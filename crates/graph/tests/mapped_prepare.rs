//! The zero-copy cache path: mapped loads must be bit-identical to owned
//! ones for every dataset analogue, `CNCPREP2` damage of any kind must be
//! rejected (then silently rebuilt by the cache), the LRU garbage collector
//! must never evict a file a live reader holds, and a multi-process populate
//! race must elect exactly one writer.

#![cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]

use std::fs::{self, File};
use std::path::{Path, PathBuf};
use std::process::Command;

use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::prepare::{
    self, cache_path, map_prepared, prepared_on_disk, read_prepared, write_prepared,
};
use cnc_graph::{PreparedGraph, ReorderPolicy};

/// A unique throwaway cache directory per test (tests run concurrently and
/// must not share disk state).
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cnc-mapped-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn assert_same_preparation(mapped: &PreparedGraph, owned: &PreparedGraph, what: &str) {
    assert_eq!(mapped.graph(), owned.graph(), "{what}: graph");
    assert_eq!(
        mapped.reordered(),
        owned.reordered(),
        "{what}: reorder data"
    );
    assert_eq!(mapped.stats(), owned.stats(), "{what}: stats");
    assert_eq!(mapped.skew_pct(), owned.skew_pct(), "{what}: skew");
    assert_eq!(mapped.policy(), owned.policy(), "{what}: policy");
}

#[test]
fn mapped_load_is_identical_for_every_dataset() {
    let dir = temp_dir("identity");
    for dataset in Dataset::ALL {
        for policy in [ReorderPolicy::None, ReorderPolicy::DegreeDescending] {
            let before = prepare::metrics();
            let cold = prepared_on_disk(&dir, dataset, Scale::Tiny, policy);
            assert_eq!(prepare::metrics().since(&before).disk_writes, 1);
            assert_eq!(cold.mapped_bytes(), 0, "cold build is heap-backed");

            let before = prepare::metrics();
            let warm = prepared_on_disk(&dir, dataset, Scale::Tiny, policy);
            let work = prepare::metrics().since(&before);
            let what = format!("{}/{}", dataset.name(), policy.tag());
            assert_eq!(work.graph_builds, 0, "{what}: no build on a warm hit");
            assert_eq!(work.mmap_hits, 1, "{what}: warm hit must map");
            assert!(warm.graph().storage_mapped(), "{what}: CSR not mapped");
            if let Some(r) = warm.reordered() {
                assert!(r.graph.storage_mapped(), "{what}: relabeled CSR not mapped");
            }
            // bytes_mapped accounts exactly the CSR sections served in place.
            let expect = warm.graph().csr_bytes() as u64
                + warm.reordered().map_or(0, |r| r.graph.csr_bytes() as u64);
            assert_eq!(work.bytes_mapped, expect, "{what}: bytes_mapped");
            assert_eq!(warm.mapped_bytes(), expect, "{what}: mapped_bytes()");

            assert_same_preparation(&warm, &cold, &what);
            assert_eq!(warm.capacity_scale(), cold.capacity_scale(), "{what}");
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mapped_and_owned_reads_of_one_file_agree() {
    let dir = temp_dir("two-paths");
    fs::create_dir_all(&dir).unwrap();
    let pg = PreparedGraph::from_edge_list(
        &Dataset::WiS.edge_list(Scale::Tiny),
        ReorderPolicy::DegreeDescending,
    );
    let path = dir.join("two-paths.prep");
    write_prepared(&pg, File::create(&path).unwrap()).unwrap();

    let mapped = map_prepared(&path).expect("valid file must map");
    let owned = read_prepared(File::open(&path).unwrap()).expect("valid file must read");
    assert!(mapped.graph().storage_mapped());
    assert!(!owned.graph().storage_mapped());
    assert_same_preparation(&mapped, &owned, "map vs read");
    assert_same_preparation(&mapped, &pg, "map vs fresh");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn map_prepared_rejects_damage_without_panicking() {
    let dir = temp_dir("damage");
    fs::create_dir_all(&dir).unwrap();
    let pg = PreparedGraph::from_edge_list(
        &Dataset::LjS.edge_list(Scale::Tiny),
        ReorderPolicy::DegreeDescending,
    );
    let path = dir.join("damage.prep");
    write_prepared(&pg, File::create(&path).unwrap()).unwrap();
    let original = fs::read(&path).unwrap();

    let mut cases: Vec<(String, Vec<u8>)> = Vec::new();
    // Truncation at every interesting depth.
    for cut in [0, 8, 63, 64, 128, original.len() / 2, original.len() - 1] {
        cases.push((format!("truncated at {cut}"), original[..cut].to_vec()));
    }
    // Stale magic, bad policy, flipped payload bit, trailing garbage.
    let mut stale = original.clone();
    stale[7] = b'1';
    cases.push(("stale version".into(), stale));
    let mut bad_policy = original.clone();
    bad_policy[8] = 9;
    cases.push(("bad policy byte".into(), bad_policy));
    let mut flipped = original.clone();
    let at = original.len() / 2;
    flipped[at] ^= 1;
    cases.push((format!("bit flip at {at}"), flipped));
    let mut long = original.clone();
    long.extend_from_slice(&[0; 64]);
    cases.push(("trailing block".into(), long));
    // Shifting a section header off its 64-byte boundary: everything after
    // the insertion point is misaligned and the layout no longer adds up.
    let mut shifted = original.clone();
    for _ in 0..4 {
        shifted.insert(64, 0);
    }
    cases.push(("misaligned sections".into(), shifted));

    for (what, bytes) in cases {
        fs::write(&path, &bytes).unwrap();
        assert!(map_prepared(&path).is_err(), "map must reject: {what}");
        assert!(
            read_prepared(bytes.as_slice()).is_err(),
            "read must reject: {what}"
        );
    }

    // And the cache layer turns every rejection into a silent rebuild.
    fs::write(
        cache_path(&dir, Dataset::LjS, Scale::Tiny, ReorderPolicy::None),
        &original[..original.len() - 1],
    )
    .unwrap();
    let before = prepare::metrics();
    let rebuilt = prepared_on_disk(&dir, Dataset::LjS, Scale::Tiny, ReorderPolicy::None);
    assert_eq!(prepare::metrics().since(&before).graph_builds, 1);
    assert_eq!(rebuilt.graph(), pg.graph());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn gc_is_lru_and_never_evicts_a_mapped_file() {
    let dir = temp_dir("gc");
    // Populate three entries; file order == recency order (each write
    // finishes before the next starts).
    let keys = [Dataset::LjS, Dataset::OrS, Dataset::WiS];
    for &d in &keys {
        prepared_on_disk(&dir, d, Scale::Tiny, ReorderPolicy::None);
    }
    let path_of = |d: Dataset| cache_path(&dir, d, Scale::Tiny, ReorderPolicy::None);
    let entries = prepare::cache_entries(&dir).unwrap();
    assert_eq!(entries.len(), 3);
    assert_eq!(entries[0].path, path_of(Dataset::WiS), "newest first");

    // Hold a live mapping of the *oldest* entry: a zero-budget GC must
    // remove everything else but skip it.
    let held = map_prepared(&path_of(Dataset::LjS)).unwrap();
    let out = prepare::cache_gc(&dir, 0).unwrap();
    assert_eq!(out.skipped_locked, 1, "the mapped file is in use");
    assert_eq!(out.evicted, 2);
    assert_eq!(out.kept, 1);
    assert!(path_of(Dataset::LjS).is_file(), "held file must survive");
    assert!(!path_of(Dataset::OrS).is_file());
    assert!(!path_of(Dataset::WiS).is_file());
    // The survivor still reads correctly through the held mapping.
    assert!(held.graph().num_vertices() > 0);

    // Once the reader is gone the file becomes evictable.
    drop(held);
    let out = prepare::cache_clear(&dir).unwrap();
    assert_eq!((out.evicted, out.skipped_locked), (1, 0));
    assert!(prepare::cache_entries(&dir).unwrap().is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn gc_budget_keeps_most_recent_entries() {
    let dir = temp_dir("budget");
    for &d in &[Dataset::TwS, Dataset::FrS] {
        prepared_on_disk(&dir, d, Scale::Tiny, ReorderPolicy::None);
    }
    let entries = prepare::cache_entries(&dir).unwrap();
    let (newest, oldest) = (&entries[0], &entries[1]);
    // A budget that fits only the newest entry evicts exactly the oldest.
    let out = prepare::cache_gc(&dir, newest.bytes + oldest.bytes - 1).unwrap();
    assert_eq!((out.evicted, out.kept), (1, 1));
    assert_eq!(out.evicted_bytes, oldest.bytes);
    assert!(newest.path.is_file());
    assert!(!oldest.path.is_file());
    // A warm hit refreshes recency: after touching the survivor, a generous
    // budget keeps it untouched.
    prepared_on_disk(&dir, Dataset::FrS, Scale::Tiny, ReorderPolicy::None);
    let out = prepare::cache_gc(&dir, u64::MAX).unwrap();
    assert_eq!(out.evicted, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncation_under_a_live_reader_degrades_to_cold_rebuild() {
    let dir = temp_dir("fault");
    let policy = ReorderPolicy::DegreeDescending;
    let cold = prepared_on_disk(&dir, Dataset::OrS, Scale::Tiny, policy);
    let path = cache_path(&dir, Dataset::OrS, Scale::Tiny, policy);

    // A live reader maps the healthy file and keeps a shared flock on its
    // inode for as long as the mapping is alive.
    let reader = map_prepared(&path).unwrap();
    let edges_before = reader.graph().num_undirected_edges();

    // Fault injection: another process truncates the file mid-way while the
    // reader still holds it (flock is advisory; plain writes are not blocked).
    let len = fs::metadata(&path).unwrap().len();
    assert!(len > 2, "fixture file too small to truncate meaningfully");
    File::options()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(len / 2)
        .unwrap();
    // From here on the reader's mapping must not be dereferenced: pages past
    // the new EOF would fault (SIGBUS). Only `edges_before` (read earlier)
    // is used below.

    // The cache must degrade to a cold rebuild — no panic, no bad data.
    let before = prepare::metrics();
    let rebuilt = prepared_on_disk(&dir, Dataset::OrS, Scale::Tiny, policy);
    let work = prepare::metrics().since(&before);
    assert_eq!(work.graph_builds, 1, "truncated file must force a rebuild");
    assert_eq!(work.disk_writes, 1, "rebuild repopulates the cache");
    assert_eq!((work.disk_hits, work.mmap_hits), (0, 0));
    assert_same_preparation(&rebuilt, &cold, "rebuild after truncation");
    assert_eq!(rebuilt.graph().num_undirected_edges(), edges_before);

    // The rebuild replaced the path via rename, so the repaired file is a
    // fresh inode: once the reader lets go, warm loads map it as usual.
    drop(reader);
    let before = prepare::metrics();
    let warm = prepared_on_disk(&dir, Dataset::OrS, Scale::Tiny, policy);
    assert_eq!(prepare::metrics().since(&before).mmap_hits, 1);
    assert_same_preparation(&warm, &cold, "warm after repair");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn gc_eviction_order_is_stable_under_equal_mtimes() {
    // Coarse filesystem timestamps can hand several cache files the same
    // mtime; the LRU must then fall back to a deterministic secondary key
    // (the path) so repeated GCs over identical state evict identically.
    let stamp = std::time::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000_000);
    let keys = [Dataset::LjS, Dataset::OrS, Dataset::WiS];
    let mut survivors = Vec::new();
    for round in 0..2 {
        let dir = temp_dir(&format!("tie-{round}"));
        for &d in &keys {
            prepared_on_disk(&dir, d, Scale::Tiny, ReorderPolicy::None);
        }
        let mut paths: Vec<PathBuf> = keys
            .iter()
            .map(|&d| cache_path(&dir, d, Scale::Tiny, ReorderPolicy::None))
            .collect();
        for p in &paths {
            File::options()
                .append(true)
                .open(p)
                .unwrap()
                .set_modified(stamp)
                .unwrap();
        }
        // Within an mtime tie, entries sort by path ascending.
        paths.sort();
        let entries = prepare::cache_entries(&dir).unwrap();
        let listed: Vec<PathBuf> = entries.iter().map(|e| e.path.clone()).collect();
        assert_eq!(listed, paths, "tied entries must list in path order");

        // A budget fitting only the head entry evicts from the tail of that
        // order, so exactly the path-ascending minimum survives.
        let out = prepare::cache_gc(&dir, entries[0].bytes).unwrap();
        assert_eq!((out.kept, out.evicted), (1, 2));
        let left = prepare::cache_entries(&dir).unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].path, paths[0]);
        survivors.push(left[0].path.file_name().unwrap().to_owned());
        let _ = fs::remove_dir_all(&dir);
    }
    assert_eq!(survivors[0], survivors[1], "GC outcome must be repeatable");
}

// --- two-process populate race --------------------------------------------

/// Probe re-run by [`concurrent_processes_elect_one_writer`] in child
/// processes; a no-op under normal test runs. Each child waits for the go
/// signal, prepares the same cold key, and prints its work counters.
#[test]
fn race_probe_child() {
    let Ok(dir) = std::env::var("CNC_RACE_DIR") else {
        return;
    };
    let go = PathBuf::from(std::env::var("CNC_RACE_GO").expect("go path set with dir"));
    for _ in 0..1000 {
        if go.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let before = prepare::metrics();
    let pg = prepared_on_disk(
        Path::new(&dir),
        Dataset::OrS,
        Scale::Tiny,
        ReorderPolicy::DegreeDescending,
    );
    let d = prepare::metrics().since(&before);
    println!(
        "RACE_PROBE builds={} writes={} hits={} edges={}",
        d.graph_builds,
        d.disk_writes,
        d.disk_hits,
        pg.graph().num_undirected_edges()
    );
}

#[test]
fn concurrent_processes_elect_one_writer() {
    let dir = temp_dir("race");
    let go = std::env::temp_dir().join(format!("cnc-mapped-{}-race-go", std::process::id()));
    let _ = fs::remove_file(&go);

    let spawn = || {
        Command::new(std::env::current_exe().unwrap())
            .args([
                "--exact",
                "race_probe_child",
                "--nocapture",
                "--test-threads",
                "1",
            ])
            .env("CNC_RACE_DIR", &dir)
            .env("CNC_RACE_GO", &go)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn race child")
    };
    let children = [spawn(), spawn()];
    // Both children are waiting on this file; creating it releases them into
    // the cold cache simultaneously.
    fs::write(&go, b"go").unwrap();

    let mut probes = Vec::new();
    for child in children {
        let out = child.wait_with_output().expect("child exit");
        assert!(out.status.success(), "race child failed");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        // With --nocapture the harness prints `test name ... ` without a
        // newline, so the probe output lands mid-line: match by substring.
        let line = stdout
            .lines()
            .find(|l| l.contains("RACE_PROBE"))
            .unwrap_or_else(|| panic!("no probe line in child output:\n{stdout}"))
            .to_string();
        let field = |name: &str| -> u64 {
            line.split_whitespace()
                .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("missing {name} in {line:?}"))
        };
        probes.push((
            field("builds"),
            field("writes"),
            field("hits"),
            field("edges"),
        ));
    }
    let _ = fs::remove_file(&go);

    let writes: u64 = probes.iter().map(|p| p.1).sum();
    let builds: u64 = probes.iter().map(|p| p.0).sum();
    assert_eq!(writes, 1, "exactly one process may write: {probes:?}");
    assert_eq!(
        builds, 1,
        "the losing process must load, not rebuild: {probes:?}"
    );
    assert_eq!(
        probes[0].3, probes[1].3,
        "both processes see the same graph"
    );
    // The survivor on disk is the winner's single file.
    assert_eq!(prepare::cache_entries(&dir).unwrap().len(), 1);
    let _ = fs::remove_dir_all(&dir);
}
