//! `CNC_CACHE_MAX_BYTES`: every cache write triggers an automatic LRU trim
//! down to the configured byte budget.
//!
//! Kept in its own test binary: it mutates process-wide environment state,
//! which must not race other tests that populate caches.

use std::fs;
use std::path::PathBuf;

use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::prepare::{self, prepared_on_disk, CACHE_MAX_BYTES_ENV};
use cnc_graph::ReorderPolicy;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cnc-cap-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn env_cap_trims_the_cache_after_each_write() {
    let dir = temp_dir("auto");

    // Generous cap: both entries fit and survive their writes.
    std::env::set_var(CACHE_MAX_BYTES_ENV, u64::MAX.to_string());
    prepared_on_disk(&dir, Dataset::LjS, Scale::Tiny, ReorderPolicy::None);
    prepared_on_disk(&dir, Dataset::WiS, Scale::Tiny, ReorderPolicy::None);
    let both = prepare::cache_entries(&dir).unwrap();
    assert_eq!(both.len(), 2);
    let newest_bytes = both[0].bytes;

    // Cap sized for one file: the next write keeps itself (most recent) and
    // evicts down to budget automatically — no explicit gc call.
    let _ = fs::remove_dir_all(&dir);
    std::env::set_var(CACHE_MAX_BYTES_ENV, newest_bytes.to_string());
    prepared_on_disk(&dir, Dataset::LjS, Scale::Tiny, ReorderPolicy::None);
    prepared_on_disk(&dir, Dataset::WiS, Scale::Tiny, ReorderPolicy::None);
    let entries = prepare::cache_entries(&dir).unwrap();
    let total: u64 = entries.iter().map(|e| e.bytes).sum();
    assert!(
        total <= newest_bytes,
        "cap not enforced: {total} > {newest_bytes}"
    );
    assert_eq!(entries.len(), 1, "only the newest write fits the budget");
    assert!(entries[0].path.ends_with("wi-s-tiny-none.prep"));

    // An unparsable cap is ignored: writes proceed, nothing is evicted.
    let _ = fs::remove_dir_all(&dir);
    std::env::set_var(CACHE_MAX_BYTES_ENV, "not-a-number");
    prepared_on_disk(&dir, Dataset::LjS, Scale::Tiny, ReorderPolicy::None);
    prepared_on_disk(&dir, Dataset::WiS, Scale::Tiny, ReorderPolicy::None);
    assert_eq!(prepare::cache_entries(&dir).unwrap().len(), 2);

    std::env::remove_var(CACHE_MAX_BYTES_ENV);
    let _ = fs::remove_dir_all(&dir);
}
