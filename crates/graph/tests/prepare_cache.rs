//! The on-disk prepared-graph cache: a hit returns exactly what a fresh
//! build produces, and a stale or corrupt cache file silently falls back to
//! a rebuild — the cache must never surface an error.

use std::fs;
use std::path::PathBuf;

use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::prepare::{self, cache_path, prepared_on_disk, PrepareMetrics};
use cnc_graph::ReorderPolicy;

/// A unique throwaway cache directory per test (tests run concurrently and
/// must not share disk state).
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cnc-prep-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn delta(before: &PrepareMetrics) -> PrepareMetrics {
    prepare::metrics().since(before)
}

#[test]
fn disk_hit_returns_identical_preparation() {
    let dir = temp_dir("hit");
    let (d, s, p) = (Dataset::WiS, Scale::Tiny, ReorderPolicy::DegreeDescending);

    let before = prepare::metrics();
    let cold = prepared_on_disk(&dir, d, s, p);
    let cold_work = delta(&before);
    assert_eq!(cold_work.graph_builds, 1);
    assert_eq!(cold_work.reorders, 1);
    assert_eq!(cold_work.disk_writes, 1);
    assert_eq!(cold_work.disk_hits, 0);
    assert!(cache_path(&dir, d, s, p).is_file());

    let before = prepare::metrics();
    let warm = prepared_on_disk(&dir, d, s, p);
    let warm_work = delta(&before);
    assert_eq!(warm_work.disk_hits, 1, "second load must hit the cache");
    assert_eq!(warm_work.graph_builds, 0, "no CSR construction on a hit");
    assert_eq!(warm_work.reorders, 0, "no relabel on a hit");

    // The hit is bit-identical to the fresh build: graph, remap tables,
    // statistics, and the dataset-derived capacity scale.
    assert_eq!(warm.graph(), cold.graph());
    assert_eq!(warm.reordered(), cold.reordered());
    assert_eq!(warm.stats(), cold.stats());
    assert_eq!(warm.skew_pct(), cold.skew_pct());
    assert_eq!(warm.capacity_scale(), cold.capacity_scale());
    assert_eq!(warm.policy(), cold.policy());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn policy_none_caches_without_tables() {
    let dir = temp_dir("none");
    let (d, s, p) = (Dataset::FrS, Scale::Tiny, ReorderPolicy::None);
    let cold = prepared_on_disk(&dir, d, s, p);
    assert!(cold.reordered().is_none());
    let before = prepare::metrics();
    let warm = prepared_on_disk(&dir, d, s, p);
    assert_eq!(delta(&before).disk_hits, 1);
    assert!(warm.reordered().is_none());
    assert_eq!(warm.graph(), cold.graph());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_version_byte_falls_back_to_rebuild() {
    let dir = temp_dir("stale");
    let (d, s, p) = (Dataset::LjS, Scale::Tiny, ReorderPolicy::DegreeDescending);
    let fresh = prepared_on_disk(&dir, d, s, p);

    // Simulate a cache written by an older format revision: same file, bumped
    // version digit in the magic.
    let path = cache_path(&dir, d, s, p);
    let mut bytes = fs::read(&path).unwrap();
    assert_eq!(&bytes[..8], b"CNCPREP4");
    bytes[7] = b'3';
    fs::write(&path, &bytes).unwrap();

    let before = prepare::metrics();
    let rebuilt = prepared_on_disk(&dir, d, s, p);
    let work = delta(&before);
    assert_eq!(work.disk_hits, 0, "stale file must not count as a hit");
    assert_eq!(work.graph_builds, 1, "stale file must trigger a rebuild");
    assert_eq!(work.disk_writes, 1, "rebuild must refresh the cache");
    assert_eq!(rebuilt.graph(), fresh.graph());
    assert_eq!(rebuilt.reordered(), fresh.reordered());

    // The refreshed file is valid again.
    let before = prepare::metrics();
    prepared_on_disk(&dir, d, s, p);
    assert_eq!(delta(&before).disk_hits, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_files_fall_back_to_rebuild() {
    let dir = temp_dir("corrupt");
    let (d, s, p) = (Dataset::TwS, Scale::Tiny, ReorderPolicy::DegreeDescending);
    let fresh = prepared_on_disk(&dir, d, s, p);
    let path = cache_path(&dir, d, s, p);
    let original = fs::read(&path).unwrap();

    // Truncation at several depths, flipped bytes, and garbage content: all
    // must rebuild silently and produce the same preparation.
    let mut corruptions: Vec<Vec<u8>> = vec![
        Vec::new(),
        original[..original.len() / 2].to_vec(),
        original[..12].to_vec(),
        b"garbage, not a cache file at all".to_vec(),
    ];
    let mut flipped = original.clone();
    flipped[original.len() / 3] ^= 0xff;
    corruptions.push(flipped);

    for (i, bad) in corruptions.into_iter().enumerate() {
        fs::write(&path, &bad).unwrap();
        let before = prepare::metrics();
        let rebuilt = prepared_on_disk(&dir, d, s, p);
        let work = delta(&before);
        assert_eq!(
            work.graph_builds, 1,
            "corruption #{i} must trigger a rebuild"
        );
        assert_eq!(rebuilt.graph(), fresh.graph());
        assert_eq!(rebuilt.reordered(), fresh.reordered());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_cache_dir_still_builds() {
    // A path that cannot be a directory (its parent is a file): writes fail,
    // preparation must still succeed.
    let blocker = std::env::temp_dir().join(format!("cnc-prep-{}-blocker", std::process::id()));
    fs::write(&blocker, b"file, not a dir").unwrap();
    let dir = blocker.join("sub");
    let before = prepare::metrics();
    let pg = prepared_on_disk(&dir, Dataset::OrS, Scale::Tiny, ReorderPolicy::None);
    let work = delta(&before);
    assert_eq!(work.graph_builds, 1);
    assert_eq!(work.disk_writes, 0, "nothing can be written");
    assert!(pg.graph().num_vertices() > 0);
    let _ = fs::remove_file(&blocker);
}
