//! The bounded-memory streaming preparation pipeline, differentially
//! against the in-memory builder: streamed `CNCPREP4` images must be
//! **byte-identical** to [`write_prepared`] on every dataset analogue and
//! on arbitrary edge lists, the `CNC_PREP_MEM_BYTES` environment routing
//! must produce the same cache file the unbudgeted path writes, and every
//! injected fault (missing input, malformed lines, unusable spill
//! directory) must surface as a typed `io::Error`, never a panic.

#![cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]

use std::fs;
use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::prepare::{self, cache_path, prepared_on_disk, write_prepared};
use cnc_graph::stream::{self, StreamConfig};
use cnc_graph::{CsrGraph, EdgeList, PreparedGraph, ReorderPolicy};
use proptest::prelude::*;

static SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique throwaway path per use (tests run concurrently and must not
/// share disk state).
fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cnc-streamtest-{}-{}-{name}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn budgeted(bytes: u64) -> StreamConfig {
    StreamConfig {
        mem_budget: Some(bytes),
        spill_dir: None,
    }
}

/// The serialized image the in-memory pipeline would cache for `el`.
fn memory_image(el: &EdgeList, policy: ReorderPolicy) -> Vec<u8> {
    let pg = PreparedGraph::from_edge_list(el, policy);
    let mut out = Vec::new();
    write_prepared(&pg, &mut out).expect("vec write cannot fail");
    out
}

#[test]
fn every_dataset_analogue_streams_byte_identical() {
    for dataset in Dataset::ALL {
        for policy in [ReorderPolicy::None, ReorderPolicy::DegreeDescending] {
            let el = dataset.edge_list(Scale::Tiny);
            let out = temp_path("analogue.prep");
            let summary = stream::prepare_pairs_to_file(
                el.num_vertices,
                el.iter(),
                policy,
                &out,
                &budgeted(4096),
            )
            .expect("streamed preparation must succeed");
            assert!(
                summary.spill_runs > 0,
                "{}: a 4 KiB budget must spill on {} edges",
                dataset.name(),
                el.len()
            );
            assert_eq!(
                fs::read(&out).expect("image readable"),
                memory_image(&el, policy),
                "{}/{}: streamed image differs from the in-memory writer",
                dataset.name(),
                policy.tag()
            );
            let _ = fs::remove_file(&out);
        }
    }
}

#[test]
fn env_budget_routes_cache_build_through_streamer() {
    // This is the only test in this binary touching the process environment
    // (metrics are per-thread, but the environment is process-global).
    let dir = temp_path("env-route");
    let dataset = Dataset::OrS;
    let policy = ReorderPolicy::DegreeDescending;
    let path = cache_path(&dir, dataset, Scale::Tiny, policy);

    // Reference: the unbudgeted in-memory cold build and its cache file.
    let unbudgeted = prepared_on_disk(&dir, dataset, Scale::Tiny, policy);
    let want = fs::read(&path).expect("cold build must write the cache file");
    fs::remove_file(&path).expect("evict for the streamed rebuild");

    std::env::set_var(stream::PREP_MEM_BYTES_ENV, "4096");
    let before = prepare::metrics();
    let streamed = prepared_on_disk(&dir, dataset, Scale::Tiny, policy);
    let work = prepare::metrics().since(&before);

    // Also exercise the plain-CSR routing while the budget is set.
    let built = dataset.build(Scale::Tiny);
    std::env::remove_var(stream::PREP_MEM_BYTES_ENV);

    assert_eq!(work.graph_builds, 1, "cold streamed build counts once");
    assert_eq!(work.reorders, 1, "degdesc policy counts a reorder");
    assert_eq!(work.disk_writes, 1, "streamed build writes the cache");
    assert!(work.spill_runs > 0, "4 KiB budget must spill");
    assert!(work.spill_bytes > 0);
    assert!(work.peak_resident_bytes > 0, "peak accounting must record");
    assert_eq!(work.mmap_hits, 1, "streamed cold build maps its own output");
    assert!(streamed.graph().storage_mapped(), "served zero-copy");

    assert_eq!(
        fs::read(&path).expect("streamed cache file"),
        want,
        "streamed cache file must be byte-identical to the unbudgeted one"
    );
    assert_eq!(streamed.graph(), unbudgeted.graph());
    assert_eq!(streamed.reordered(), unbudgeted.reordered());
    assert_eq!(streamed.skew_pct(), unbudgeted.skew_pct());
    assert_eq!(streamed.stats(), unbudgeted.stats());
    assert_eq!(streamed.capacity_scale(), unbudgeted.capacity_scale());
    assert_eq!(built, *unbudgeted.graph(), "Dataset::build under budget");

    // Warm load (no env): the streamed file serves like any cache file.
    let before = prepare::metrics();
    let warm = prepared_on_disk(&dir, dataset, Scale::Tiny, policy);
    let work = prepare::metrics().since(&before);
    assert_eq!(work.graph_builds, 0, "no rebuild on warm hit");
    assert_eq!(work.mmap_hits, 1);
    assert_eq!(warm.graph(), unbudgeted.graph());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_input_is_typed_error() {
    let out = temp_path("missing.prep");
    let err = stream::prepare_file(
        &temp_path("does-not-exist.txt"),
        &out,
        ReorderPolicy::None,
        &budgeted(4096),
    )
    .expect_err("missing input must fail");
    assert_eq!(err.kind(), ErrorKind::NotFound);
}

#[test]
fn malformed_text_reports_line_and_content() {
    let input = temp_path("malformed.txt");
    fs::write(&input, "# ok\n0 1\n1 2\nfoo bar\n").expect("write input");
    let out = temp_path("malformed.prep");
    let err = stream::prepare_file(&input, &out, ReorderPolicy::None, &budgeted(4096))
        .expect_err("malformed line must fail");
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("line 4"), "wrong line number: {msg}");
    assert!(msg.contains("foo"), "missing offending text: {msg}");
    let _ = fs::remove_file(&input);
}

#[test]
fn unusable_spill_dir_is_typed_error() {
    // Point the spill base at a regular file: creating run directories
    // under it must fail with a typed error before any data is written.
    let base = temp_path("spill-base-file");
    fs::write(&base, b"not a directory").expect("write blocker file");
    let el = cnc_graph::generators::gnm(50, 120, 3);
    let out = temp_path("spill.prep");
    let cfg = StreamConfig {
        mem_budget: Some(4096),
        spill_dir: Some(base.clone()),
    };
    let err =
        stream::prepare_pairs_to_file(el.num_vertices, el.iter(), ReorderPolicy::None, &out, &cfg)
            .expect_err("file-as-spill-dir must fail");
    assert_ne!(
        err.kind(),
        ErrorKind::Other,
        "should be a concrete kind: {err}"
    );
    let _ = fs::remove_file(&base);
}

/// Strategy: an arbitrary raw pair list over up to `n` vertices — loops,
/// duplicates and reversed orientations included.
fn pairs(n: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole differential property: for arbitrary messy pair lists,
    /// any budget, and both policies, the streamed image is byte-for-byte
    /// what the in-memory pipeline serializes.
    #[test]
    fn streamed_image_matches_memory_writer(
        ps in pairs(64, 300),
        degdesc in any::<bool>(),
        budget in 1u64..8192,
    ) {
        let policy = if degdesc {
            ReorderPolicy::DegreeDescending
        } else {
            ReorderPolicy::None
        };
        let el = EdgeList::from_pairs(ps.iter().copied());
        let out = temp_path("prop.prep");
        // Feed the raw (unnormalized) pairs: the streamer must do its own
        // canonicalization and vertex-count inference.
        stream::prepare_pairs_to_file(0, ps.iter().copied(), policy, &out, &budgeted(budget))
            .expect("streamed preparation must succeed");
        prop_assert_eq!(
            fs::read(&out).expect("image readable"),
            memory_image(&el, policy)
        );
        let _ = fs::remove_file(&out);
    }

    /// The owned-CSR route used by `Dataset::build` under a budget.
    #[test]
    fn bounded_csr_matches_parallel_builder(ps in pairs(48, 250), budget in 1u64..4096) {
        let el = EdgeList::from_pairs(ps.iter().copied());
        let want = CsrGraph::from_edge_list_parallel(&el);
        let got = stream::build_csr_bounded(0, ps.iter().copied(), &budgeted(budget))
            .expect("bounded build must succeed");
        prop_assert_eq!(got, want);
    }
}
