//! Analytic machine performance models.
//!
//! The paper's KNL and 28-core CPU server are not available in this
//! environment, so their elapsed times are *modeled*: the algorithms run for
//! real (producing exact counts and exact work tallies via
//! `cnc-intersect`'s metering), and this crate converts a [`WorkProfile`]
//! into a modeled elapsed time on a [`MachineSpec`] under a thread count and
//! memory mode.
//!
//! The model is a roofline with an explicit latency term:
//!
//! * **compute** — scalar and vector operations retire at per-thread issue
//!   rates, scaled by a parallel-efficiency curve (SMT threads beyond the
//!   core count contribute a small marginal gain);
//! * **streaming** — sequential bytes move at the per-thread streaming
//!   bandwidth, saturating at the memory system's peak;
//! * **random** — random accesses are either latency-bound (outstanding
//!   misses per thread × threads) or bandwidth-bound (a cache line per
//!   miss), whichever is worse; the miss ratio comes from comparing the
//!   aggregate random working set (replicated per thread for thread-local
//!   bitmaps) to the last-level cache size.
//!
//! The KNL memory modes reproduce the paper's MCDRAM study: `Ddr` uses the
//! DDR4 channels, `McdramFlat` allocates the arrays in MCDRAM, and
//! `McdramCache` uses MCDRAM as a memory-side cache with a small data
//! movement overhead (Figure 7's "cache mode slightly slower than flat").
//!
//! **Scaling rule.** The dataset analogues are ~1/1000th of the paper's
//! graphs. To preserve every working-set-vs-capacity ratio the paper's
//! findings depend on (bitmap vs L3, CSR vs MCDRAM, CSR vs GPU global
//! memory), [`MachineSpec::scaled`] shrinks the *capacity-like* fields
//! (caches, memory capacities) by the same factor while leaving rates
//! (GHz, GB/s, ns) untouched. EXPERIMENTS.md documents the factor used per
//! experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod profile;
mod spec;

pub use model::{estimate, ModelReport};
pub use profile::WorkProfile;
pub use spec::{cpu_server, knl, MachineSpec, MemMode, MemProfile};

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic merge-like profile: mostly scalar + streaming.
    fn merge_profile() -> WorkProfile {
        WorkProfile {
            scalar_ops: 2.0e9,
            vector_ops: 0.0,
            seq_bytes: 1.6e10,
            rand_accesses: 1.0e6,
            rand_accesses_small: 0.0,
            write_bytes: 1.0e8,
            ws_rand_bytes: 1.0e8,
            ws_replicated_per_thread: false,
        }
    }

    /// The same work vectorized: scalar ops become vector ops.
    fn vb_profile() -> WorkProfile {
        WorkProfile {
            scalar_ops: 2.0e8,
            vector_ops: 1.8e9,
            ..merge_profile()
        }
    }

    /// A bitmap-probe profile: latency-dominated random access with a
    /// replicated (thread-local) working set.
    fn bmp_profile(ws: f64) -> WorkProfile {
        WorkProfile {
            scalar_ops: 6.0e8,
            vector_ops: 0.0,
            seq_bytes: 2.0e9,
            rand_accesses: 6.0e8,
            rand_accesses_small: 0.0,
            write_bytes: 1.0e8,
            ws_rand_bytes: ws,
            ws_replicated_per_thread: true,
        }
    }

    #[test]
    fn knl_sequential_slower_than_cpu_sequential() {
        // Figure 3 context: the baseline M is far slower on KNL (weak cores).
        let p = merge_profile();
        let t_cpu = estimate(&cpu_server(), &p, 1, MemMode::Ddr).seconds;
        let t_knl = estimate(&knl(), &p, 1, MemMode::Ddr).seconds;
        assert!(t_knl > 2.0 * t_cpu, "knl {t_knl} vs cpu {t_cpu}");
    }

    #[test]
    fn vectorization_helps_more_on_knl() {
        // Figure 4: AVX-512 on KNL gains more than AVX2 on the CPU.
        let cpu = cpu_server();
        let k = knl();
        let speedup_cpu = estimate(&cpu, &merge_profile(), 1, MemMode::Ddr).seconds
            / estimate(&cpu, &vb_profile(), 1, MemMode::Ddr).seconds;
        let speedup_knl = estimate(&k, &merge_profile(), 1, MemMode::Ddr).seconds
            / estimate(&k, &vb_profile(), 1, MemMode::Ddr).seconds;
        assert!(speedup_knl > speedup_cpu, "{speedup_knl} vs {speedup_cpu}");
        assert!(speedup_cpu > 1.2, "vectorization must help: {speedup_cpu}");
    }

    #[test]
    fn mcdram_flat_helps_bandwidth_bound_work() {
        // Figure 7: MPS (streaming) gains 1.6–1.8x from MCDRAM flat.
        let k = knl();
        let p = vb_profile();
        let ddr = estimate(&k, &p, 256, MemMode::Ddr).seconds;
        let flat = estimate(&k, &p, 256, MemMode::McdramFlat).seconds;
        let gain = ddr / flat;
        assert!((1.2..=3.0).contains(&gain), "flat gain {gain}");
        // Cache mode lands between DDR and flat.
        let cache = estimate(&k, &p, 256, MemMode::McdramCache).seconds;
        assert!(
            cache >= flat && cache <= ddr,
            "cache {cache} flat {flat} ddr {ddr}"
        );
    }

    #[test]
    fn mcdram_helps_latency_bound_work_less() {
        // Figure 7: BMP gains only 1.2–1.3x — bitmap probes are
        // latency-sensitive, not bandwidth-sensitive.
        let k = knl();
        let bw = bmp_profile(5.0e6);
        // Each algorithm at its paper operating point: BMP peaks at 64
        // threads on the KNL (Figure 5), MPS at 256.
        let gain_bmp = estimate(&k, &bw, 64, MemMode::Ddr).seconds
            / estimate(&k, &bw, 64, MemMode::McdramFlat).seconds;
        let gain_mps = estimate(&k, &vb_profile(), 256, MemMode::Ddr).seconds
            / estimate(&k, &vb_profile(), 256, MemMode::McdramFlat).seconds;
        assert!(gain_bmp < gain_mps, "bmp {gain_bmp} vs mps {gain_mps}");
        // Paper magnitudes: MPS 1.6–1.8x, BMP 1.1–1.3x.
        assert!((1.3..=2.2).contains(&gain_mps), "mps hbw gain {gain_mps}");
        assert!((1.02..=1.45).contains(&gain_bmp), "bmp hbw gain {gain_bmp}");
    }

    #[test]
    fn replicated_working_set_degrades_scaling() {
        // Figure 5's KNL-BMP curve: more threads → more thread-local
        // bitmaps → cache pressure; speedup must flatten or regress.
        let k = knl();
        let p = bmp_profile(6.0e6); // bitmap bigger than per-core cache share
        let t64 = estimate(&k, &p, 64, MemMode::Ddr).seconds;
        let t256 = estimate(&k, &p, 256, MemMode::Ddr).seconds;
        let scaling = t64 / t256;
        assert!(
            scaling < 1.5,
            "BMP should stop scaling past 64 threads, got extra {scaling}x"
        );
    }

    #[test]
    fn streaming_work_scales_until_bandwidth_saturates() {
        // Figure 5's MPS curves: near-linear until the memory system
        // saturates, then flat.
        let k = knl();
        let p = vb_profile();
        let t1 = estimate(&k, &p, 1, MemMode::McdramFlat).seconds;
        let t64 = estimate(&k, &p, 64, MemMode::McdramFlat).seconds;
        let t256 = estimate(&k, &p, 256, MemMode::McdramFlat).seconds;
        let s64 = t1 / t64;
        let s256 = t1 / t256;
        assert!(s64 > 25.0, "64-thread speedup too low: {s64}");
        assert!(s256 / s64 < 2.0, "scaling must saturate: {s64} → {s256}");
    }

    #[test]
    fn scaled_spec_preserves_rates_and_shrinks_capacities() {
        let k = knl();
        let s = k.scaled(1e-3);
        assert_eq!(s.ghz, k.ghz);
        assert_eq!(s.ddr.bw_gbps, k.ddr.bw_gbps);
        assert!((s.cache_bytes as f64 - k.cache_bytes as f64 * 1e-3).abs() < 64.0);
        let (mc_s, mc_k) = (s.mcdram.unwrap(), k.mcdram.unwrap());
        assert_eq!(mc_s.bw_gbps, mc_k.bw_gbps);
        assert!(mc_s.capacity_bytes.unwrap() < mc_k.capacity_bytes.unwrap());
    }
}
