//! The roofline + latency timing model.

use crate::profile::WorkProfile;
use crate::spec::{MachineSpec, MemMode};

/// Breakdown of a modeled elapsed time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelReport {
    /// Total modeled elapsed seconds.
    pub seconds: f64,
    /// Compute (issue-bound) component.
    pub compute_s: f64,
    /// Sequential-streaming component.
    pub seq_s: f64,
    /// Random-access component (max of latency- and bandwidth-bound).
    pub rand_s: f64,
    /// Cache-resident small-structure probes.
    pub small_s: f64,
    /// Modeled cache hit ratio for the large random working set.
    pub cache_hit_ratio: f64,
    /// Threads used.
    pub threads: usize,
    /// Memory mode used.
    pub mode: MemMode,
}

/// Effective parallel compute throughput in "thread-equivalents".
///
/// Threads up to the core count contribute fully; SMT threads add the
/// machine's marginal `smt_gain` each.
fn effective_threads(spec: &MachineSpec, threads: usize) -> f64 {
    let t = threads.min(spec.max_threads());
    if t <= spec.cores {
        t as f64
    } else {
        spec.cores as f64 + (t - spec.cores) as f64 * spec.smt_gain
    }
}

/// L1 probe cost in cycles (RF small-bitmap lookups and similar).
const L1_PROBE_CYCLES: f64 = 2.0;

/// Cache line size in bytes for random-traffic bandwidth accounting.
const LINE_BYTES: f64 = 64.0;

/// Fraction of the latency term that overlaps with compute (OoO cores hide
/// some of it; in-order KNL hides less — folded into `mlp`).
const LATENCY_OVERLAP: f64 = 0.3;

/// Model the elapsed time of `profile` on `spec` with `threads` threads and
/// memory `mode`.
pub fn estimate(
    spec: &MachineSpec,
    profile: &WorkProfile,
    threads: usize,
    mode: MemMode,
) -> ModelReport {
    let threads = threads.clamp(1, spec.max_threads());
    let mem = spec.mem(mode);
    let eff = effective_threads(spec, threads);
    let hz = spec.ghz * 1e9;

    // --- compute ---
    let scalar_cycles = profile.scalar_ops / spec.scalar_ipc;
    let vector_cycles = profile.vector_ops / spec.vector_issue;
    let small_cycles = profile.rand_accesses_small * L1_PROBE_CYCLES;
    let compute_s = (scalar_cycles + vector_cycles) / hz / eff;
    let small_s = small_cycles / hz / eff;

    // --- sequential streaming ---
    // Only the reuse-discounted fraction of metered bytes hits DRAM.
    let bw = (threads as f64 * spec.per_thread_bw_gbps).min(mem.bw_gbps) * 1e9;
    let seq_s = (profile.seq_bytes * spec.seq_reuse_factor + profile.write_bytes) / bw;

    // --- random access ---
    // Aggregate working set: thread-local structures replicate.
    let ws = if profile.ws_replicated_per_thread {
        profile.ws_rand_bytes * threads as f64
    } else {
        profile.ws_rand_bytes
    };
    let cache_hit_ratio = if ws <= 0.0 {
        1.0
    } else {
        (spec.cache_bytes as f64 / ws).min(1.0)
    };
    let lat_eff_ns =
        cache_hit_ratio * spec.cache_latency_ns + (1.0 - cache_hit_ratio) * mem.latency_ns;
    // Latency-bound throughput: each thread keeps `mlp` misses in flight.
    let rand_latency_s = profile.rand_accesses * lat_eff_ns * 1e-9 / (threads as f64 * spec.mlp);
    // Bandwidth-bound: misses that fetch a new line move LINE_BYTES; probes
    // clustered in an already-fetched line are discounted.
    let miss_accesses = profile.rand_accesses * (1.0 - cache_hit_ratio) * spec.rand_line_reuse;
    let rand_bw_s = miss_accesses * LINE_BYTES / (mem.bw_gbps * 1e9 * spec.rand_bw_frac);
    let rand_s = rand_latency_s.max(rand_bw_s) * (1.0 - LATENCY_OVERLAP)
        + rand_latency_s.min(rand_bw_s) * 0.0;

    // Roofline: compute overlaps with streaming; random access (pointer
    // chasing into the bitmap / binary-search probes) overlaps only
    // partially and is added.
    let seconds = compute_s.max(seq_s) + rand_s + small_s;

    // Mirror the model's inputs and verdict into the ambient observability
    // context (no-op when none is installed): byte totals are what the
    // roofline terms priced, elapsed is the modeled wall clock.
    if let Some(ctx) = cnc_obs::ObsContext::current() {
        use cnc_obs::Counter as C;
        ctx.add(C::ModelEstimates, 1);
        ctx.add(C::ModelSeqBytes, profile.seq_bytes as u64);
        ctx.add(C::ModelWriteBytes, profile.write_bytes as u64);
        ctx.add(C::ModelElapsedNanos, (seconds * 1e9) as u64);
    }

    ModelReport {
        seconds,
        compute_s,
        seq_s,
        rand_s,
        small_s,
        cache_hit_ratio,
        threads,
        mode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{cpu_server, knl};

    fn simple(scalar: f64, seq: f64, rand: f64, ws: f64, repl: bool) -> WorkProfile {
        WorkProfile {
            scalar_ops: scalar,
            vector_ops: 0.0,
            seq_bytes: seq,
            rand_accesses: rand,
            rand_accesses_small: 0.0,
            write_bytes: 0.0,
            ws_rand_bytes: ws,
            ws_replicated_per_thread: repl,
        }
    }

    #[test]
    fn zero_work_is_zero_time() {
        let r = estimate(&cpu_server(), &WorkProfile::zero(), 8, MemMode::Ddr);
        assert_eq!(r.seconds, 0.0);
    }

    #[test]
    fn compute_bound_scales_linearly_up_to_cores() {
        let spec = cpu_server();
        let p = simple(1e10, 1e6, 0.0, 0.0, false);
        let t1 = estimate(&spec, &p, 1, MemMode::Ddr).seconds;
        let t14 = estimate(&spec, &p, 14, MemMode::Ddr).seconds;
        let s = t1 / t14;
        assert!((13.0..=14.5).contains(&s), "speedup {s}");
    }

    #[test]
    fn smt_gives_diminishing_returns() {
        let spec = cpu_server();
        let p = simple(1e10, 1e6, 0.0, 0.0, false);
        let t28 = estimate(&spec, &p, 28, MemMode::Ddr).seconds;
        let t56 = estimate(&spec, &p, 56, MemMode::Ddr).seconds;
        let extra = t28 / t56;
        assert!(extra > 1.05 && extra < 1.6, "smt extra {extra}");
    }

    #[test]
    fn bandwidth_bound_work_saturates() {
        let spec = cpu_server();
        let p = simple(1e6, 1e12, 0.0, 0.0, false);
        let t8 = estimate(&spec, &p, 8, MemMode::Ddr).seconds;
        let t56 = estimate(&spec, &p, 56, MemMode::Ddr).seconds;
        // 8 threads already draw 96 GB/s > the 76.8 peak: no further gain.
        assert!((t8 / t56 - 1.0).abs() < 0.05, "{t8} vs {t56}");
    }

    #[test]
    fn cache_resident_random_access_is_cheap() {
        let spec = cpu_server();
        let fits = simple(0.0, 0.0, 1e9, 1e6, false); // 1 MB « 35 MB L3
        let spills = simple(0.0, 0.0, 1e9, 1e9, false); // 1 GB » L3
        let t_fit = estimate(&spec, &fits, 28, MemMode::Ddr).seconds;
        let t_spill = estimate(&spec, &spills, 28, MemMode::Ddr).seconds;
        assert!(t_spill > 3.0 * t_fit, "{t_spill} vs {t_fit}");
    }

    #[test]
    fn replication_hurts_at_high_thread_counts() {
        let spec = knl();
        // 4 MB bitmap per thread: fine for a few threads, spills at many.
        let p = simple(0.0, 0.0, 1e9, 4e6, true);
        let few = estimate(&spec, &p, 4, MemMode::Ddr);
        let many = estimate(&spec, &p, 256, MemMode::Ddr);
        assert!(few.cache_hit_ratio > many.cache_hit_ratio);
    }

    #[test]
    fn report_components_sum_consistently() {
        let spec = knl();
        let p = simple(1e9, 1e9, 1e8, 1e8, false);
        let r = estimate(&spec, &p, 64, MemMode::McdramFlat);
        let recomputed = r.compute_s.max(r.seq_s) + r.rand_s + r.small_s;
        assert!((r.seconds - recomputed).abs() < 1e-12);
        assert_eq!(r.threads, 64);
        assert_eq!(r.mode, MemMode::McdramFlat);
    }

    #[test]
    fn threads_clamped_to_machine() {
        let spec = cpu_server();
        let p = simple(1e9, 0.0, 0.0, 0.0, false);
        let r = estimate(&spec, &p, 10_000, MemMode::Ddr);
        assert_eq!(r.threads, 56);
    }
}

impl std::fmt::Display for ModelReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3e}s [compute {:.1e}, stream {:.1e}, random {:.1e} (hit {:.0}%), small {:.1e}] @{}t{}",
            self.seconds,
            self.compute_s,
            self.seq_s,
            self.rand_s,
            self.cache_hit_ratio * 100.0,
            self.small_s,
            self.threads,
            self.mode.suffix(),
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use crate::profile::WorkProfile;
    use crate::spec::{knl, MemMode};

    #[test]
    fn display_mentions_threads_and_mode() {
        let p = WorkProfile {
            scalar_ops: 1e9,
            ..WorkProfile::zero()
        };
        let r = estimate(&knl(), &p, 64, MemMode::McdramFlat);
        let s = r.to_string();
        assert!(s.contains("@64t"), "{s}");
        assert!(s.contains("-Flat"), "{s}");
    }
}
