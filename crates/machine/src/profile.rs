//! Architecture-neutral work profiles.

/// The work a run performed, in machine-neutral units.
///
/// Produced from `cnc_intersect::WorkCounts` (the conversion lives in
/// `cnc-knl`, which depends on both crates) plus knowledge of the algorithm:
/// what the random-access working set is and whether it is replicated per
/// thread. All quantities are totals across the whole computation; the model
/// divides by parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkProfile {
    /// Branchy scalar operations.
    pub scalar_ops: f64,
    /// Vector (SIMD block) operations.
    pub vector_ops: f64,
    /// Bytes streamed sequentially.
    pub seq_bytes: f64,
    /// Random accesses into the large working set.
    pub rand_accesses: f64,
    /// Random accesses guaranteed cache-resident (RF small bitmap).
    pub rand_accesses_small: f64,
    /// Bytes written.
    pub write_bytes: f64,
    /// Size of one instance of the randomly accessed structure:
    /// the `|V|`-bit bitmap for BMP, the CSR neighbor array for the
    /// merge-family's binary searches.
    pub ws_rand_bytes: f64,
    /// Whether each thread owns a private instance of that structure
    /// (BMP's thread-local bitmaps: yes; the shared CSR: no).
    pub ws_replicated_per_thread: bool,
}

impl WorkProfile {
    /// An all-zero profile.
    pub fn zero() -> Self {
        Self {
            scalar_ops: 0.0,
            vector_ops: 0.0,
            seq_bytes: 0.0,
            rand_accesses: 0.0,
            rand_accesses_small: 0.0,
            write_bytes: 0.0,
            ws_rand_bytes: 0.0,
            ws_replicated_per_thread: false,
        }
    }

    /// Total operation count (for sanity checks and tests).
    pub fn total_ops(&self) -> f64 {
        self.scalar_ops + self.vector_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_profile() {
        let z = WorkProfile::zero();
        assert_eq!(z.total_ops(), 0.0);
        assert!(!z.ws_replicated_per_thread);
    }

    #[test]
    fn struct_update_syntax_works() {
        let p = WorkProfile {
            scalar_ops: 5.0,
            ..WorkProfile::zero()
        };
        assert_eq!(p.total_ops(), 5.0);
    }
}
