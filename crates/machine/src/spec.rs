//! Machine specifications: the paper's two modeled processors.

/// One memory system (a set of channels with a bandwidth, latency, and
/// optionally a capacity that matters for placement decisions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemProfile {
    /// Peak streaming bandwidth in GB/s.
    pub bw_gbps: f64,
    /// Random-access (cache-miss) latency in nanoseconds.
    pub latency_ns: f64,
    /// Capacity in bytes, if bounded (MCDRAM: 16 GB; DDR: effectively
    /// unbounded for this workload → `None`).
    pub capacity_bytes: Option<u64>,
}

/// Where the graph arrays and bitmaps live on the modeled machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemMode {
    /// Regular DDR4 (the default on both machines).
    Ddr,
    /// KNL flat mode with explicit MCDRAM allocation (`memkind` in the
    /// paper). Invalid on machines without MCDRAM.
    McdramFlat,
    /// KNL cache mode: MCDRAM as a memory-side cache — no code changes, a
    /// small data-movement overhead.
    McdramCache,
}

impl MemMode {
    /// Paper label ("", "-Flat", "-Cache").
    pub fn suffix(self) -> &'static str {
        match self {
            MemMode::Ddr => "",
            MemMode::McdramFlat => "-Flat",
            MemMode::McdramCache => "-Cache",
        }
    }
}

/// An analytically modeled shared-memory processor.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: String,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads per core (2 on the Xeon, 4 on KNL).
    pub smt: usize,
    /// Clock in GHz.
    pub ghz: f64,
    /// Scalar (branchy) operations retired per cycle per thread. Deliberately
    /// below the nominal IPC: the merge loop's data-dependent branches
    /// mispredict heavily, which is exactly what VB removes.
    pub scalar_ipc: f64,
    /// Vector operations issued per cycle per core (the KNL has 2 VPUs).
    pub vector_issue: f64,
    /// 32-bit lanes per vector operation.
    pub vector_lanes: usize,
    /// Last-level cache in bytes (CPU: 35 MB L3; KNL: 32 MB aggregate L2).
    pub cache_bytes: u64,
    /// Last-level cache hit latency in ns.
    pub cache_latency_ns: f64,
    /// Outstanding random misses a single thread sustains (MLP).
    pub mlp: f64,
    /// Marginal compute throughput of each SMT thread beyond the core count
    /// (0 = SMT useless, 1 = perfect).
    pub smt_gain: f64,
    /// Streaming bandwidth one thread can draw, GB/s.
    pub per_thread_bw_gbps: f64,
    /// Fraction of peak bandwidth usable by random (cache-line) traffic.
    pub rand_bw_frac: f64,
    /// Fraction of *metered* sequential bytes that actually reach DRAM.
    /// Metered bytes count every element touch, but the block-wise merge
    /// re-reads blocks from cache and a hub's neighbor list stays resident
    /// across its consecutive intersections, so DRAM traffic is a fraction.
    pub seq_reuse_factor: f64,
    /// Fraction of random misses that move a *new* cache line (consecutive
    /// bitmap probes often land in an already-fetched line).
    pub rand_line_reuse: f64,
    /// The DDR memory system.
    pub ddr: MemProfile,
    /// MCDRAM, if present (KNL only).
    pub mcdram: Option<MemProfile>,
    /// Bandwidth multiplier (< 1) when MCDRAM runs in cache mode.
    pub mcdram_cache_bw_factor: f64,
    /// Extra latency in ns when MCDRAM runs in cache mode (tag checks and
    /// line movement).
    pub mcdram_cache_latency_ns: f64,
}

impl MachineSpec {
    /// The memory profile selected by `mode`.
    ///
    /// # Panics
    /// If an MCDRAM mode is requested on a machine without MCDRAM.
    pub fn mem(&self, mode: MemMode) -> MemProfile {
        match mode {
            MemMode::Ddr => self.ddr,
            MemMode::McdramFlat => self
                .mcdram
                .expect("machine has no MCDRAM: flat mode invalid"),
            MemMode::McdramCache => {
                let mc = self
                    .mcdram
                    .expect("machine has no MCDRAM: cache mode invalid");
                MemProfile {
                    bw_gbps: mc.bw_gbps * self.mcdram_cache_bw_factor,
                    latency_ns: mc.latency_ns + self.mcdram_cache_latency_ns,
                    capacity_bytes: mc.capacity_bytes,
                }
            }
        }
    }

    /// Memory modes this machine supports.
    pub fn modes(&self) -> Vec<MemMode> {
        if self.mcdram.is_some() {
            vec![MemMode::Ddr, MemMode::McdramFlat, MemMode::McdramCache]
        } else {
            vec![MemMode::Ddr]
        }
    }

    /// Maximum hardware threads.
    pub fn max_threads(&self) -> usize {
        self.cores * self.smt
    }

    /// Shrink capacity-like fields by `factor` (see the crate docs' scaling
    /// rule). Rates are untouched.
    pub fn scaled(&self, factor: f64) -> MachineSpec {
        assert!(factor > 0.0);
        let scale_cap = |c: Option<u64>| c.map(|x| ((x as f64 * factor) as u64).max(1024));
        let mut s = self.clone();
        s.name = format!("{} (x{factor:.0e} capacities)", self.name);
        s.cache_bytes = ((self.cache_bytes as f64 * factor) as u64).max(1024);
        s.ddr.capacity_bytes = scale_cap(self.ddr.capacity_bytes);
        if let Some(mc) = &mut s.mcdram {
            mc.capacity_bytes = scale_cap(self.mcdram.unwrap().capacity_bytes);
        }
        s
    }
}

/// The paper's CPU server: two 14-core 2.4 GHz Xeon E5-2680 v4 (AVX2,
/// 35 MB L3, DDR4).
pub fn cpu_server() -> MachineSpec {
    MachineSpec {
        name: "2x Xeon E5-2680 v4 (28C/56T, AVX2)".into(),
        cores: 28,
        smt: 2,
        ghz: 2.4,
        // Branchy merge on an OoO core: ~3 cycles per element once the
        // ~50% mispredict rate of data-dependent branches is priced in.
        scalar_ipc: 0.35,
        vector_issue: 0.66,
        vector_lanes: 8,
        cache_bytes: 35 << 20,
        cache_latency_ns: 18.0,
        // Deep OoO window: many bitmap probes in flight per thread.
        mlp: 16.0,
        // Paper: 41.1x MPS speedup with 64 threads on 28 cores — HT is
        // quite effective on this workload.
        smt_gain: 0.46,
        per_thread_bw_gbps: 10.0,
        rand_bw_frac: 0.55,
        seq_reuse_factor: 0.15,
        // L2/L3 absorb most probe lines; BMP on this CPU is latency-bound
        // (Table 4: BMP+P beats MPS+V+P on TW), not traffic-bound.
        rand_line_reuse: 0.08,
        ddr: MemProfile {
            bw_gbps: 76.8,
            latency_ns: 95.0,
            capacity_bytes: None, // 512 GB: unbounded for this workload
        },
        mcdram: None,
        mcdram_cache_bw_factor: 1.0,
        mcdram_cache_latency_ns: 0.0,
    }
}

/// The paper's KNL: Xeon Phi 7210, 64 cores × 4 threads at 1.3 GHz,
/// AVX-512 with 2 VPUs per core, 16 GB MCDRAM (quadrant mode) + 96 GB DDR4.
pub fn knl() -> MachineSpec {
    MachineSpec {
        name: "Xeon Phi 7210 (64C/256T, AVX-512, MCDRAM)".into(),
        cores: 64,
        smt: 4,
        ghz: 1.3,
        // Silvermont-derived in-order-ish cores: branchy scalar code crawls
        // (~4 cycles per merge element). Calibrated jointly with
        // vector_issue against the paper's Table 4: sequential MPS+V is
        // ~2x slower on the KNL than the CPU, and AVX-512 gains ~2.6x.
        scalar_ipc: 0.22,
        vector_issue: 0.7,
        vector_lanes: 16,
        cache_bytes: 32 << 20, // 1 MB L2 per 2-core tile, 32 MB aggregate
        cache_latency_ns: 25.0,
        mlp: 4.0,
        // Paper: MPS-Flat reaches 112x over sequential with 256 threads —
        // each of the 3 extra HW threads per core adds ~25%.
        smt_gain: 0.25,
        per_thread_bw_gbps: 6.0,
        rand_bw_frac: 0.5,
        seq_reuse_factor: 0.25,
        rand_line_reuse: 0.5,
        ddr: MemProfile {
            bw_gbps: 90.0,
            latency_ns: 130.0,
            capacity_bytes: None, // 96 GB
        },
        mcdram: Some(MemProfile {
            bw_gbps: 420.0,
            latency_ns: 150.0, // MCDRAM trades latency for bandwidth
            capacity_bytes: Some(16 << 30),
        }),
        mcdram_cache_bw_factor: 0.85,
        mcdram_cache_latency_ns: 15.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let c = cpu_server();
        assert_eq!(c.max_threads(), 56);
        assert_eq!(c.modes(), vec![MemMode::Ddr]);
        let k = knl();
        assert_eq!(k.max_threads(), 256);
        assert_eq!(k.modes().len(), 3);
        assert_eq!(k.vector_lanes, 16);
    }

    #[test]
    fn mem_mode_selection() {
        let k = knl();
        let flat = k.mem(MemMode::McdramFlat);
        let cache = k.mem(MemMode::McdramCache);
        let ddr = k.mem(MemMode::Ddr);
        assert!(flat.bw_gbps > ddr.bw_gbps);
        assert!(cache.bw_gbps < flat.bw_gbps);
        assert!(cache.latency_ns > flat.latency_ns);
    }

    #[test]
    #[should_panic(expected = "no MCDRAM")]
    fn flat_mode_on_cpu_panics() {
        let _ = cpu_server().mem(MemMode::McdramFlat);
    }

    #[test]
    fn mode_suffixes() {
        assert_eq!(MemMode::Ddr.suffix(), "");
        assert_eq!(MemMode::McdramFlat.suffix(), "-Flat");
    }

    #[test]
    fn scaled_clamps_to_minimum() {
        let s = cpu_server().scaled(1e-12);
        assert!(s.cache_bytes >= 1024);
    }
}
