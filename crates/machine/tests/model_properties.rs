//! Property tests of the timing model: sanity laws any cost model must obey.

use cnc_machine::{cpu_server, estimate, knl, MemMode, WorkProfile};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = WorkProfile> {
    (
        0.0f64..1e10,
        0.0f64..1e10,
        0.0f64..1e11,
        0.0f64..1e9,
        0.0f64..1e9,
        0.0f64..1e9,
        1.0f64..1e9,
        any::<bool>(),
    )
        .prop_map(
            |(scalar, vector, seq, rand, small, writes, ws, repl)| WorkProfile {
                scalar_ops: scalar,
                vector_ops: vector,
                seq_bytes: seq,
                rand_accesses: rand,
                rand_accesses_small: small,
                write_bytes: writes,
                ws_rand_bytes: ws,
                ws_replicated_per_thread: repl,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn time_is_nonnegative_and_finite(p in profile_strategy(), threads in 1usize..512) {
        for spec in [cpu_server(), knl()] {
            for mode in spec.modes() {
                let r = estimate(&spec, &p, threads, mode);
                prop_assert!(r.seconds.is_finite());
                prop_assert!(r.seconds >= 0.0);
                prop_assert!((0.0..=1.0).contains(&r.cache_hit_ratio));
            }
        }
    }

    #[test]
    fn more_work_never_faster(p in profile_strategy(), threads in 1usize..256) {
        let spec = knl();
        let double = WorkProfile {
            scalar_ops: p.scalar_ops * 2.0,
            vector_ops: p.vector_ops * 2.0,
            seq_bytes: p.seq_bytes * 2.0,
            rand_accesses: p.rand_accesses * 2.0,
            rand_accesses_small: p.rand_accesses_small * 2.0,
            write_bytes: p.write_bytes * 2.0,
            ..p
        };
        let t1 = estimate(&spec, &p, threads, MemMode::Ddr).seconds;
        let t2 = estimate(&spec, &double, threads, MemMode::Ddr).seconds;
        prop_assert!(t2 >= t1 * (1.0 - 1e-12), "{t1} vs {t2}");
    }

    #[test]
    fn shared_working_set_scaling_is_monotone(p in profile_strategy(), t1 in 1usize..256, t2 in 1usize..256) {
        // With a SHARED working set (no per-thread replication), more
        // threads never hurt in this model.
        prop_assume!(t1 <= t2);
        let spec = knl();
        let shared = WorkProfile { ws_replicated_per_thread: false, ..p };
        let a = estimate(&spec, &shared, t1, MemMode::Ddr).seconds;
        let b = estimate(&spec, &shared, t2, MemMode::Ddr).seconds;
        prop_assert!(b <= a * (1.0 + 1e-9), "threads {t1}→{t2}: {a} → {b}");
    }

    #[test]
    fn mcdram_flat_never_slower_for_shared_sets(p in profile_strategy(), threads in 1usize..256) {
        // MCDRAM has more bandwidth but higher latency; for purely
        // streaming work it must not lose.
        let spec = knl();
        let streaming = WorkProfile {
            rand_accesses: 0.0,
            ..p
        };
        let ddr = estimate(&spec, &streaming, threads, MemMode::Ddr).seconds;
        let flat = estimate(&spec, &streaming, threads, MemMode::McdramFlat).seconds;
        prop_assert!(flat <= ddr * (1.0 + 1e-9), "{ddr} vs {flat}");
    }

    #[test]
    fn bigger_cache_never_slower(p in profile_strategy(), threads in 1usize..128) {
        let small_cache = knl().scaled(1e-4);
        let mut big_cache = small_cache.clone();
        big_cache.cache_bytes *= 1024;
        let a = estimate(&small_cache, &p, threads, MemMode::Ddr).seconds;
        let b = estimate(&big_cache, &p, threads, MemMode::Ddr).seconds;
        prop_assert!(b <= a * (1.0 + 1e-9), "{a} vs {b}");
    }

    #[test]
    fn report_total_is_sum_of_parts(p in profile_strategy(), threads in 1usize..256) {
        let spec = cpu_server();
        let r = estimate(&spec, &p, threads, MemMode::Ddr);
        let recomputed = r.compute_s.max(r.seq_s) + r.rand_s + r.small_s;
        prop_assert!((r.seconds - recomputed).abs() <= 1e-12 * r.seconds.max(1.0));
    }
}
