//! Differential property test: after every batch of random edits, the
//! incremental maintainer must agree exactly with a from-scratch recount by
//! the sequential CPU backend — on the tiny dataset analogues, under both
//! reorder policies. Unlike `incremental_properties` (which checks against
//! `reference_counts`), the oracle here is the full `Runner` pipeline, so a
//! disagreement anywhere in plan/prepare/execute also surfaces.

use cnc_core::{Algorithm, IncrementalCnc, Platform, Runner};
use cnc_graph::datasets::{Dataset, Scale};
use proptest::prelude::*;

/// Batches of raw edits; vertex ids are reduced modulo the graph order at
/// apply time (the strategy cannot know the analogue's size up front).
fn batches() -> impl Strategy<Value = Vec<Vec<(bool, u32, u32)>>> {
    prop::collection::vec(
        prop::collection::vec((any::<bool>(), any::<u32>(), any::<u32>()), 1..24),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_tracks_cpu_seq_on_tiny_analogues(
        which in 0usize..Dataset::ALL.len(),
        reorder in any::<bool>(),
        script in batches(),
    ) {
        let dataset = Dataset::ALL[which];
        let g = dataset.build(Scale::Tiny);
        let n = g.num_vertices() as u32;
        // The oracle: a sequential CPU recount. `reorder` toggles the
        // degree-descending preprocessing — counts always come back in the
        // input graph's edge offsets, so both policies must agree with the
        // maintained state bit for bit.
        let runner =
            Runner::new(Platform::CpuSequential, Algorithm::mps()).reorder(reorder);
        let baseline = runner.try_run(&g).unwrap();
        let mut inc = IncrementalCnc::from_graph(&g, baseline.counts()).unwrap();

        for batch in script {
            for (ins, a, b) in batch {
                let (a, b) = (a % n, b % n);
                if a == b {
                    continue;
                }
                if ins {
                    inc.insert_edge(a, b).unwrap();
                } else {
                    inc.remove_edge(a, b);
                }
            }
            let (snapshot, maintained) = inc.snapshot();
            let fresh = runner.try_run(&snapshot).unwrap();
            prop_assert_eq!(
                maintained,
                fresh.counts(),
                "{}/{}: maintained counts diverged from a fresh recount",
                dataset.name(),
                if reorder { "reordered" } else { "plain" }
            );
        }
    }
}
