//! Property tests for the incremental count maintainer: arbitrary edit
//! scripts must leave the counts exactly equal to a from-scratch recount.

use cnc_core::{reference_counts, IncrementalCnc};
use cnc_graph::{CsrGraph, EdgeList};
use proptest::prelude::*;

/// An edit: insert or remove an (unordered) vertex pair.
#[derive(Debug, Clone, Copy)]
enum Edit {
    Insert(u32, u32),
    Remove(u32, u32),
}

fn edits(n: u32, len: usize) -> impl Strategy<Value = Vec<Edit>> {
    prop::collection::vec(
        (any::<bool>(), 0..n, 0..n).prop_map(|(ins, a, b)| {
            if ins {
                Edit::Insert(a, b)
            } else {
                Edit::Remove(a, b)
            }
        }),
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_edit_scripts_stay_exact(
        seed in prop::collection::vec((0u32..30, 0u32..30), 0..60),
        script in edits(30, 120),
    ) {
        // Start from an arbitrary seed graph.
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(seed));
        let counts = reference_counts(&g);
        let mut inc = IncrementalCnc::from_graph(&g, &counts).unwrap();
        // Grow the id space so Insert targets are always valid.
        while inc.num_vertices() < 30 {
            inc.add_vertex();
        }
        let mut edge_count = inc.num_edges();
        for e in script {
            match e {
                Edit::Insert(a, b) if a != b && inc.insert_edge(a, b).unwrap() => {
                    edge_count += 1;
                }
                Edit::Remove(a, b) if a != b && inc.remove_edge(a, b) => {
                    edge_count -= 1;
                }
                _ => {}
            }
        }
        prop_assert_eq!(inc.num_edges(), edge_count);
        // The maintained state must equal a from-scratch recount.
        let (snapshot, maintained) = inc.snapshot();
        let fresh = reference_counts(&snapshot);
        prop_assert_eq!(maintained, fresh);
    }

    #[test]
    fn insert_then_remove_is_identity(
        seed in prop::collection::vec((0u32..25, 0u32..25), 0..50),
        extra in prop::collection::vec((0u32..25, 0u32..25), 0..20),
    ) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(seed));
        let counts = reference_counts(&g);
        let mut inc = IncrementalCnc::from_graph(&g, &counts).unwrap();
        while inc.num_vertices() < 25 {
            inc.add_vertex();
        }
        let before = inc.snapshot();
        // Insert a batch of genuinely new edges, then remove them in
        // reverse: the structure must return to its exact prior state.
        let mut added = Vec::new();
        for (a, b) in extra {
            if a != b && inc.insert_edge(a, b).unwrap() {
                added.push((a, b));
            }
        }
        for (a, b) in added.into_iter().rev() {
            prop_assert!(inc.remove_edge(a, b));
        }
        let after = inc.snapshot();
        prop_assert_eq!(before.0, after.0);
        prop_assert_eq!(before.1, after.1);
    }
}
