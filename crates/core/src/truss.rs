//! k-truss decomposition seeded by the all-edge common neighbor counts.
//!
//! The *support* of an edge is the number of triangles it participates in —
//! exactly `cnt[e(u,v)]` for adjacent pairs, i.e. the paper's output. The
//! k-truss is the maximal subgraph in which every edge has support ≥ k − 2;
//! the *trussness* of an edge is the largest k whose truss contains it.
//! This module implements the standard peeling algorithm (Wang & Cheng,
//! PVLDB 2012): repeatedly remove the edge of minimum support and decrement
//! the support of the edges completing triangles with it.
//!
//! A natural "future work" layer on the paper: once the counts exist, the
//! entire decomposition costs `O(Σ cnt)` extra.

use std::collections::BTreeSet;

use cnc_graph::CsrGraph;
use cnc_intersect::{merge_collect, NullMeter};

/// The truss decomposition of a graph.
#[derive(Debug, Clone)]
pub struct TrussResult {
    /// Trussness per *directed edge slot* (both slots of an undirected edge
    /// carry the same value). An edge in no triangle has trussness 2.
    pub trussness: Vec<u32>,
    /// The maximum trussness in the graph.
    pub max_k: u32,
}

impl TrussResult {
    /// Number of undirected edges with trussness ≥ k.
    pub fn truss_edge_count(&self, g: &CsrGraph, k: u32) -> usize {
        g.iter_edges()
            .filter(|&(eid, u, v)| u < v && self.trussness[eid] >= k)
            .count()
    }
}

/// Why a truss decomposition rejected its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrussError {
    /// The counts slice does not align with the graph's directed edge slots.
    CountsLengthMismatch {
        /// `g.num_directed_edges()`.
        expected: usize,
        /// `counts.len()` as passed.
        got: usize,
    },
    /// A triangle discovered during peeling references an edge the CSR does
    /// not store — the graph's adjacency is internally inconsistent.
    MissingTriangleEdge {
        /// Source endpoint of the missing edge.
        u: u32,
        /// Destination endpoint of the missing edge.
        v: u32,
    },
}

impl std::fmt::Display for TrussError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrussError::CountsLengthMismatch { expected, got } => write!(
                f,
                "counts length {got} does not match {expected} directed edge slots"
            ),
            TrussError::MissingTriangleEdge { u, v } => write!(
                f,
                "triangle references edge ({u}, {v}) missing from the CSR adjacency"
            ),
        }
    }
}

impl std::error::Error for TrussError {}

/// Compute the truss decomposition, seeded with precomputed counts
/// (must be the common neighbor counts of `g`).
///
/// Fails with [`TrussError::CountsLengthMismatch`] when `counts` is not
/// aligned to `g`'s directed edge slots.
pub fn truss_decomposition(g: &CsrGraph, counts: &[u32]) -> Result<TrussResult, TrussError> {
    if counts.len() != g.num_directed_edges() {
        return Err(TrussError::CountsLengthMismatch {
            expected: g.num_directed_edges(),
            got: counts.len(),
        });
    }
    let m = g.num_directed_edges();
    // Work on canonical (u < v) edges; map both slots at the end.
    let mut support: Vec<i64> = counts.iter().map(|&c| c as i64).collect();
    let mut removed = vec![false; m];
    let mut trussness = vec![0u32; m];

    // Min-heap by support via an ordered set of (support, eid) for the
    // canonical slots. Lazy deletion is avoided by keeping the set exact.
    let mut queue: BTreeSet<(i64, usize)> = g
        .iter_edges()
        .filter(|&(_, u, v)| u < v)
        .map(|(eid, _, _)| (support[eid], eid))
        .collect();

    let mut scratch = Vec::new();
    let mut k = 2u32;
    while let Some(&(s, eid)) = queue.iter().next() {
        queue.remove(&(s, eid));
        // Peeling: the next edge's truss level is max(k, support + 2),
        // saturated so corrupt (e.g. u32::MAX) input supports cannot
        // overflow — garbage counts give garbage levels, never a panic.
        let level = (s.max(0) as u64 + 2).min(u32::MAX as u64) as u32;
        k = k.max(level);
        let mut hint = 0u32;
        let u = g.find_src(eid, &mut hint);
        let v = g.dst()[eid];
        trussness[eid] = k;
        removed[eid] = true;
        let rev = g.reverse_offset(u, eid);
        trussness[rev] = k;
        removed[rev] = true;

        // Every still-present triangle (u, v, w) loses this edge: decrement
        // the supports of (u, w) and (v, w).
        merge_collect(g.neighbors(u), g.neighbors(v), &mut scratch, &mut NullMeter);
        for &w in &scratch {
            let euw = g
                .edge_offset(u, w)
                .ok_or(TrussError::MissingTriangleEdge { u, v: w })?;
            let evw = g
                .edge_offset(v, w)
                .ok_or(TrussError::MissingTriangleEdge { u: v, v: w })?;
            if removed[euw] || removed[evw] {
                continue;
            }
            for e in [euw, evw] {
                let canon = canonical_slot(g, e);
                if queue.remove(&(support[canon], canon)) {
                    support[canon] -= 1;
                    queue.insert((support[canon], canon));
                }
            }
        }
    }
    let max_k = trussness.iter().copied().max().unwrap_or(2);
    Ok(TrussResult { trussness, max_k })
}

/// The canonical (u < v) slot of an edge given either slot.
fn canonical_slot(g: &CsrGraph, eid: usize) -> usize {
    let mut hint = 0u32;
    let u = g.find_src(eid, &mut hint);
    let v = g.dst()[eid];
    if u < v {
        eid
    } else {
        g.reverse_offset(u, eid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_counts;
    use cnc_graph::{generators, EdgeList};

    fn decompose(g: &CsrGraph) -> TrussResult {
        let counts = reference_counts(g);
        truss_decomposition(g, &counts).unwrap()
    }

    /// Oracle: iterative peeling at each k level, straightforward version.
    fn oracle_trussness(g: &CsrGraph) -> Vec<u32> {
        let m = g.num_directed_edges();
        let mut alive = vec![true; m];
        let mut truss = vec![0u32; m];
        let support = |alive: &[bool], eid: usize, g: &CsrGraph| -> u32 {
            let mut hint = 0u32;
            let u = g.find_src(eid, &mut hint);
            let v = g.dst()[eid];
            let mut c = 0;
            for &w in g.neighbors(u) {
                if let (Some(e1), Some(e2)) = (g.edge_offset(u, w), g.edge_offset(v, w)) {
                    if alive[e1] && alive[e2] && w != v {
                        c += 1;
                    }
                }
            }
            c
        };
        let mut k = 2u32;
        while alive.iter().any(|&a| a) {
            loop {
                let victims: Vec<usize> = (0..m)
                    .filter(|&e| alive[e] && support(&alive, e, g) + 2 <= k)
                    .collect();
                if victims.is_empty() {
                    break;
                }
                for e in victims {
                    alive[e] = false;
                    truss[e] = k;
                }
            }
            k += 1;
        }
        truss
    }

    #[test]
    fn complete_graph_trussness() {
        // Every edge of K_n has trussness n.
        for n in [3usize, 4, 5, 6] {
            let g = CsrGraph::from_edge_list(&generators::complete(n));
            let r = decompose(&g);
            assert!(
                r.trussness.iter().all(|&t| t == n as u32),
                "K{n}: {:?}",
                r.trussness
            );
            assert_eq!(r.max_k, n as u32);
        }
    }

    #[test]
    fn triangle_free_graphs_are_2_trusses() {
        for el in [generators::path(10), generators::star(10)] {
            let g = CsrGraph::from_edge_list(&el);
            let r = decompose(&g);
            assert!(r.trussness.iter().all(|&t| t == 2));
        }
    }

    #[test]
    fn clique_with_tail() {
        // K5 plus a pendant edge: clique edges trussness 5, pendant 2.
        let mut el = generators::complete(5);
        el.push(0, 5);
        let g = CsrGraph::from_edge_list(&el);
        let r = decompose(&g);
        let pendant = g.edge_offset(0, 5).unwrap();
        assert_eq!(r.trussness[pendant], 2);
        let clique_edge = g.edge_offset(1, 2).unwrap();
        assert_eq!(r.trussness[clique_edge], 5);
        assert_eq!(r.truss_edge_count(&g, 5), 10);
        assert_eq!(r.truss_edge_count(&g, 2), 11);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..5u64 {
            let g = CsrGraph::from_edge_list(&generators::gnm(40, 160, seed));
            let fast = decompose(&g);
            let slow = oracle_trussness(&g);
            assert_eq!(fast.trussness, slow, "seed={seed}");
        }
        let g = CsrGraph::from_edge_list(&generators::chung_lu(60, 8.0, 2.2, 9));
        assert_eq!(decompose(&g).trussness, oracle_trussness(&g));
    }

    #[test]
    fn both_slots_carry_same_trussness() {
        let g = CsrGraph::from_edge_list(&generators::gnm(50, 200, 3));
        let r = decompose(&g);
        for (eid, u, _) in g.iter_edges() {
            let rev = g.reverse_offset(u, eid);
            assert_eq!(r.trussness[eid], r.trussness[rev]);
        }
    }

    #[test]
    fn inconsistent_counts_surface_typed_errors_not_panics() {
        let g = CsrGraph::from_edge_list(&generators::complete(5));
        let m = g.num_directed_edges();
        // Misaligned counts are rejected with the length mismatch.
        let err = truss_decomposition(&g, &vec![0u32; m + 3]).unwrap_err();
        assert_eq!(
            err,
            TrussError::CountsLengthMismatch {
                expected: m,
                got: m + 3
            }
        );
        assert!(err.to_string().contains("directed edge slots"));
        // Garbage counts of the right length are not detectable up front;
        // the peel must still terminate without panicking (supports only
        // seed the removal order, the triangles come from the adjacency).
        let garbage = vec![u32::MAX; m];
        let r = truss_decomposition(&g, &garbage).expect("well-formed CSR never loses a triangle");
        assert_eq!(r.trussness.len(), m);
        // The missing-edge variant renders both endpoints.
        let msg = TrussError::MissingTriangleEdge { u: 7, v: 9 }.to_string();
        assert!(msg.contains("(7, 9)"), "{msg}");
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        let r = decompose(&g);
        assert!(r.trussness.is_empty());
        assert_eq!(r.max_k, 2);
    }
}
