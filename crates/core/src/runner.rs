//! The unified platform × algorithm runner.

use std::time::Instant;

use cnc_cpu::{
    par_bmp, par_merge_baseline, par_mps, seq_bmp, seq_merge_baseline, seq_mps, BmpMode, ParConfig,
};
use cnc_gpu::{GpuAlgo, GpuReport, GpuRunConfig, GpuRunner};
use cnc_graph::{reorder, CsrGraph};
use cnc_intersect::{MpsConfig, NullMeter};
use cnc_knl::{ModeledAlgo, ModeledProcessor};
use cnc_machine::{MemMode, ModelReport};

use crate::analytics::CncView;
use crate::remap::counts_to_original;

/// Range-filter selection for BMP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfChoice {
    /// No range filtering.
    Off,
    /// Scale-aware ratio (`cnc_intersect::scaled_rf_ratio`) — the paper's
    /// "fits in L1" rule at any graph size.
    Scaled,
    /// Explicit ratio (power of two).
    Ratio(usize),
}

impl RfChoice {
    fn mode(self, num_vertices: usize) -> BmpMode {
        match self {
            RfChoice::Off => BmpMode::Plain,
            RfChoice::Scaled => BmpMode::rf_scaled(num_vertices),
            RfChoice::Ratio(r) => BmpMode::RangeFiltered { ratio: r },
        }
    }
}

/// The algorithm to run (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The unoptimized merge baseline **M**.
    MergeBaseline,
    /// **MPS**: hybrid vectorized block merge + pivot skip.
    Mps(MpsConfig),
    /// **BMP**: dynamic bitmap index.
    Bmp(RfChoice),
}

impl Algorithm {
    /// MPS with auto-detected SIMD and the paper-default threshold.
    pub fn mps() -> Self {
        Algorithm::Mps(MpsConfig::default())
    }

    /// BMP with the scale-aware range filter.
    pub fn bmp_rf() -> Self {
        Algorithm::Bmp(RfChoice::Scaled)
    }

    /// BMP without range filtering.
    pub fn bmp() -> Self {
        Algorithm::Bmp(RfChoice::Off)
    }

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::MergeBaseline => "M",
            Algorithm::Mps(_) => "MPS",
            Algorithm::Bmp(RfChoice::Off) => "BMP",
            Algorithm::Bmp(_) => "BMP-RF",
        }
    }
}

/// The processor to run on.
#[derive(Debug, Clone, PartialEq)]
pub enum Platform {
    /// The real host CPU, sequential (measured wall-clock).
    CpuSequential,
    /// The real host CPU with the rayon skeleton (measured wall-clock).
    CpuParallel(ParConfig),
    /// The modeled 28-core CPU server (exact counts, modeled time).
    CpuModel {
        /// Modeled thread count.
        threads: usize,
        /// Capacity-scaling factor (see `Dataset::capacity_scale`).
        capacity_scale: f64,
    },
    /// The modeled KNL (exact counts, modeled time).
    Knl {
        /// Modeled thread count (up to 256).
        threads: usize,
        /// MCDRAM mode.
        mode: MemMode,
        /// Capacity-scaling factor.
        capacity_scale: f64,
    },
    /// The simulated GPU (exact counts, modeled time).
    Gpu {
        /// Kernel launch and pass configuration.
        config: GpuRunConfig,
        /// Capacity-scaling factor.
        capacity_scale: f64,
    },
}

impl Platform {
    /// Real-CPU parallel execution with defaults.
    pub fn cpu_parallel() -> Self {
        Platform::CpuParallel(ParConfig::default())
    }

    /// Modeled KNL at its best configuration (256 threads, MCDRAM flat).
    pub fn knl_flat(capacity_scale: f64) -> Self {
        Platform::Knl {
            threads: 256,
            mode: MemMode::McdramFlat,
            capacity_scale,
        }
    }

    /// Simulated GPU with default launch parameters.
    pub fn gpu(capacity_scale: f64) -> Self {
        Platform::Gpu {
            config: GpuRunConfig::default(),
            capacity_scale,
        }
    }
}

/// Platform-specific detail attached to a result.
#[derive(Debug, Clone)]
pub enum RunDetail {
    /// Real execution: nothing beyond the wall clock.
    Measured,
    /// Modeled shared-memory processor report.
    Modeled(ModelReport),
    /// GPU simulator report.
    Gpu(Box<GpuReport>),
}

/// The outcome of a counting run.
#[derive(Debug, Clone)]
pub struct CncResult {
    /// One count per directed edge slot of the *input* graph.
    pub counts: Vec<u32>,
    /// Host wall-clock seconds for the whole run (including simulation
    /// overhead — not a performance number for modeled platforms).
    pub wall_seconds: f64,
    /// Modeled elapsed seconds, for modeled platforms.
    pub modeled_seconds: Option<f64>,
    /// Platform-specific details.
    pub detail: RunDetail,
}

impl CncResult {
    /// Bind the counts to their graph for derived analytics.
    pub fn view<'a>(&'a self, g: &'a CsrGraph) -> CncView<'a> {
        CncView::new(g, &self.counts)
    }
}

/// A configured platform × algorithm run.
#[derive(Debug, Clone)]
pub struct Runner {
    platform: Platform,
    algorithm: Algorithm,
    reorder: bool,
}

impl Runner {
    /// A runner for the given platform and algorithm. Degree-descending
    /// reordering defaults to on for BMP (its complexity bound needs it)
    /// and off otherwise.
    pub fn new(platform: Platform, algorithm: Algorithm) -> Self {
        let reorder = matches!(algorithm, Algorithm::Bmp(_));
        Self {
            platform,
            algorithm,
            reorder,
        }
    }

    /// Override the degree-descending reordering preprocessing. Counts are
    /// always returned in the *input* graph's edge offsets.
    pub fn reorder(mut self, yes: bool) -> Self {
        self.reorder = yes;
        self
    }

    /// Execute on `g`.
    pub fn run(&self, g: &CsrGraph) -> CncResult {
        let t0 = Instant::now();
        if self.reorder {
            let r = reorder::degree_descending(g);
            let mut result = self.run_directly(&r.graph);
            result.counts = counts_to_original(g, &r, &result.counts);
            result.wall_seconds = t0.elapsed().as_secs_f64();
            result
        } else {
            let mut result = self.run_directly(g);
            result.wall_seconds = t0.elapsed().as_secs_f64();
            result
        }
    }

    fn run_directly(&self, g: &CsrGraph) -> CncResult {
        match &self.platform {
            Platform::CpuSequential => {
                let mut m = NullMeter;
                let counts = match &self.algorithm {
                    Algorithm::MergeBaseline => seq_merge_baseline(g, &mut m),
                    Algorithm::Mps(cfg) => seq_mps(g, cfg, &mut m),
                    Algorithm::Bmp(rf) => seq_bmp(g, rf.mode(g.num_vertices()), &mut m),
                };
                CncResult {
                    counts,
                    wall_seconds: 0.0,
                    modeled_seconds: None,
                    detail: RunDetail::Measured,
                }
            }
            Platform::CpuParallel(par) => {
                let counts = match &self.algorithm {
                    Algorithm::MergeBaseline => par_merge_baseline(g, par),
                    Algorithm::Mps(cfg) => par_mps(g, cfg, par),
                    Algorithm::Bmp(rf) => par_bmp(g, rf.mode(g.num_vertices()), par),
                };
                CncResult {
                    counts,
                    wall_seconds: 0.0,
                    modeled_seconds: None,
                    detail: RunDetail::Measured,
                }
            }
            Platform::CpuModel {
                threads,
                capacity_scale,
            } => {
                let proc_ = ModeledProcessor::cpu_for(*capacity_scale);
                let run = proc_.run(g, &self.modeled_algo(g), *threads, MemMode::Ddr);
                CncResult {
                    counts: run.counts,
                    wall_seconds: 0.0,
                    modeled_seconds: Some(run.report.seconds),
                    detail: RunDetail::Modeled(run.report),
                }
            }
            Platform::Knl {
                threads,
                mode,
                capacity_scale,
            } => {
                let proc_ = ModeledProcessor::knl_for(*capacity_scale);
                let run = proc_.run(g, &self.modeled_algo(g), *threads, *mode);
                CncResult {
                    counts: run.counts,
                    wall_seconds: 0.0,
                    modeled_seconds: Some(run.report.seconds),
                    detail: RunDetail::Modeled(run.report),
                }
            }
            Platform::Gpu {
                config,
                capacity_scale,
            } => {
                let gpu = GpuRunner::titan_xp_for(*capacity_scale);
                let algo = match &self.algorithm {
                    // The GPU has no separate plain-merge baseline in the
                    // paper; the MKernel path with threshold ∞ is M.
                    Algorithm::MergeBaseline | Algorithm::Mps(_) => GpuAlgo::Mps,
                    Algorithm::Bmp(rf) => GpuAlgo::Bmp {
                        rf: !matches!(rf, RfChoice::Off),
                    },
                };
                let mut cfg = *config;
                if matches!(self.algorithm, Algorithm::MergeBaseline) {
                    cfg.launch.skew_threshold = u32::MAX;
                }
                let run = gpu.run(g, algo, &cfg);
                CncResult {
                    counts: run.counts,
                    wall_seconds: 0.0,
                    modeled_seconds: Some(run.report.total_seconds),
                    detail: RunDetail::Gpu(Box::new(run.report)),
                }
            }
        }
    }

    fn modeled_algo(&self, g: &CsrGraph) -> ModeledAlgo {
        match &self.algorithm {
            Algorithm::MergeBaseline => ModeledAlgo::MergeBaseline,
            Algorithm::Mps(cfg) => ModeledAlgo::Mps {
                simd: cfg.simd,
                threshold: cfg.skew_threshold,
            },
            Algorithm::Bmp(rf) => ModeledAlgo::Bmp {
                mode: rf.mode(g.num_vertices()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{reference_counts, verify_counts};
    use cnc_graph::datasets::{Dataset, Scale};
    use cnc_graph::generators;

    fn platforms(scale: f64) -> Vec<Platform> {
        vec![
            Platform::CpuSequential,
            Platform::cpu_parallel(),
            Platform::CpuModel {
                threads: 56,
                capacity_scale: scale,
            },
            Platform::knl_flat(scale),
            Platform::Knl {
                threads: 64,
                mode: MemMode::Ddr,
                capacity_scale: scale,
            },
            Platform::gpu(scale),
        ]
    }

    #[test]
    fn every_platform_algorithm_combination_is_exact() {
        let g = Dataset::LjS.build(Scale::Tiny);
        let scale = Dataset::LjS.capacity_scale(&g);
        let want = reference_counts(&g);
        for platform in platforms(scale) {
            for algorithm in [Algorithm::MergeBaseline, Algorithm::mps(), Algorithm::bmp(), Algorithm::bmp_rf()] {
                let r = Runner::new(platform.clone(), algorithm).run(&g);
                assert_eq!(
                    r.counts,
                    want,
                    "platform={platform:?} algorithm={}",
                    algorithm.label()
                );
            }
        }
    }

    #[test]
    fn reorder_toggle_does_not_change_counts() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(300, 6.0, 2, 0.4, 3));
        for reorder in [false, true] {
            let r = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf())
                .reorder(reorder)
                .run(&g);
            assert!(verify_counts(&g, &r.counts).is_ok(), "reorder={reorder}");
        }
    }

    #[test]
    fn modeled_platforms_report_modeled_time() {
        let g = Dataset::FrS.build(Scale::Tiny);
        let scale = Dataset::FrS.capacity_scale(&g);
        let knl = Runner::new(Platform::knl_flat(scale), Algorithm::mps()).run(&g);
        assert!(knl.modeled_seconds.unwrap() > 0.0);
        assert!(matches!(knl.detail, RunDetail::Modeled(_)));
        let gpu = Runner::new(Platform::gpu(scale), Algorithm::bmp_rf()).run(&g);
        assert!(gpu.modeled_seconds.unwrap() > 0.0);
        assert!(matches!(gpu.detail, RunDetail::Gpu(_)));
        let cpu = Runner::new(Platform::cpu_parallel(), Algorithm::mps()).run(&g);
        assert!(cpu.modeled_seconds.is_none());
        assert!(cpu.wall_seconds > 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(Algorithm::MergeBaseline.label(), "M");
        assert_eq!(Algorithm::mps().label(), "MPS");
        assert_eq!(Algorithm::bmp().label(), "BMP");
        assert_eq!(Algorithm::bmp_rf().label(), "BMP-RF");
    }

    #[test]
    fn view_round_trip() {
        let g = CsrGraph::from_edge_list(&generators::clique_chain(4, 8));
        let r = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run(&g);
        assert_eq!(r.view(&g).triangle_count(), 4 * 56);
    }
}
