//! The unified platform × algorithm runner.
//!
//! A run is three explicit steps:
//!
//! 1. **Plan** ([`Runner::plan`], `crate::plan`) — resolve the reordering
//!    decision, select and validate the kernel, fix the partitioning, and
//!    record any platform-forced kernel substitution;
//! 2. **Execute** (`crate::backend`) — hand the plan to the platform's
//!    [`Backend`](crate::Backend) implementation;
//! 3. **Report** — assemble the unified [`RunStats`] (requested vs
//!    effective kernel, work tallies, wall and modeled time) alongside the
//!    platform-specific [`RunDetail`].
//!
//! Preprocessing lives *outside* the three steps: runs consume an
//! immutable [`PreparedGraph`] (CSR + optional degree-descending relabel +
//! statistics, computed once — see `cnc_graph::prepare`). Call
//! [`Runner::run_prepared`] to share one preparation across many runs;
//! [`Runner::run`] remains as a convenience that prepares a bare
//! [`CsrGraph`] on the spot.

use std::time::Instant;

use cnc_cpu::{BmpMode, ParConfig};
use cnc_gpu::{GpuReport, GpuRunConfig};
use cnc_graph::{CsrGraph, PreparedGraph, ReorderPolicy};
use cnc_intersect::{MpsConfig, WorkCounts};
use cnc_knl::ModeledProcessor;
use cnc_machine::{MemMode, ModelReport};
use cnc_obs::{ObsContext, RunReport};
use cnc_workload::{WorkloadKind, WorkloadOutput};

use crate::analytics::CncView;
use crate::backend::{Backend, CpuParBackend, CpuSeqBackend, GpuSimBackend, ModeledBackend};
use crate::plan::{KernelSubstitution, PlanError};
use crate::remap::counts_to_original;

/// Range-filter selection for BMP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfChoice {
    /// No range filtering.
    Off,
    /// Scale-aware ratio (`cnc_intersect::scaled_rf_ratio`) — the paper's
    /// "fits in L1" rule at any graph size.
    Scaled,
    /// Explicit ratio (power of two).
    Ratio(usize),
}

impl RfChoice {
    pub(crate) fn mode(self, num_vertices: usize) -> BmpMode {
        match self {
            RfChoice::Off => BmpMode::Plain,
            RfChoice::Scaled => BmpMode::rf_scaled(num_vertices),
            RfChoice::Ratio(r) => BmpMode::RangeFiltered { ratio: r },
        }
    }
}

/// The algorithm to run (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The unoptimized merge baseline **M**.
    MergeBaseline,
    /// **MPS**: hybrid vectorized block merge + pivot skip.
    Mps(MpsConfig),
    /// **BMP**: dynamic bitmap index.
    Bmp(RfChoice),
}

impl Algorithm {
    /// MPS with auto-detected SIMD and the paper-default threshold.
    pub fn mps() -> Self {
        Algorithm::Mps(MpsConfig::default())
    }

    /// BMP with the scale-aware range filter.
    pub fn bmp_rf() -> Self {
        Algorithm::Bmp(RfChoice::Scaled)
    }

    /// BMP without range filtering.
    pub fn bmp() -> Self {
        Algorithm::Bmp(RfChoice::Off)
    }

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::MergeBaseline => "M",
            Algorithm::Mps(_) => "MPS",
            Algorithm::Bmp(RfChoice::Off) => "BMP",
            Algorithm::Bmp(_) => "BMP-RF",
        }
    }
}

/// The processor to run on.
#[derive(Debug, Clone, PartialEq)]
pub enum Platform {
    /// The real host CPU, sequential (measured wall-clock).
    CpuSequential,
    /// The real host CPU with the rayon skeleton (measured wall-clock).
    CpuParallel(ParConfig),
    /// The modeled 28-core CPU server (exact counts, modeled time).
    CpuModel {
        /// Modeled thread count.
        threads: usize,
        /// Capacity-scaling factor (see `Dataset::capacity_scale`).
        capacity_scale: f64,
    },
    /// The modeled KNL (exact counts, modeled time).
    Knl {
        /// Modeled thread count (up to 256).
        threads: usize,
        /// MCDRAM mode.
        mode: MemMode,
        /// Capacity-scaling factor.
        capacity_scale: f64,
    },
    /// The simulated GPU (exact counts, modeled time).
    Gpu {
        /// Kernel launch and pass configuration.
        config: GpuRunConfig,
        /// Capacity-scaling factor.
        capacity_scale: f64,
    },
}

impl Platform {
    /// Real-CPU parallel execution with defaults.
    pub fn cpu_parallel() -> Self {
        Platform::CpuParallel(ParConfig::default())
    }

    /// Modeled KNL at its best configuration (256 threads, MCDRAM flat).
    pub fn knl_flat(capacity_scale: f64) -> Self {
        Platform::Knl {
            threads: 256,
            mode: MemMode::McdramFlat,
            capacity_scale,
        }
    }

    /// Simulated GPU with default launch parameters.
    pub fn gpu(capacity_scale: f64) -> Self {
        Platform::Gpu {
            config: GpuRunConfig::default(),
            capacity_scale,
        }
    }
}

/// Platform-specific detail attached to a result.
#[derive(Debug, Clone)]
pub enum RunDetail {
    /// Real execution: nothing beyond the wall clock.
    Measured,
    /// Modeled shared-memory processor report.
    Modeled(ModelReport),
    /// GPU simulator report.
    Gpu(Box<GpuReport>),
}

/// The unified report of a run: what was asked for, what actually ran,
/// and the timing/work evidence the platform produced.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Backend label (`cpu-seq`, `cpu-par`, `cpu-model`, `knl`, `gpu-sim`).
    pub platform: String,
    /// Label of the executed workload (`cnc`, `triangle`, `kclique(k=4)`).
    pub workload: String,
    /// Paper-style label of the requested algorithm.
    pub requested_algorithm: String,
    /// What actually ran: equals the requested label unless the platform
    /// substituted a kernel (see [`RunStats::substitution`]).
    pub effective_algorithm: String,
    /// Whether degree-descending reordering preprocessed the graph.
    pub reordered: bool,
    /// A platform-forced kernel substitution, explicit instead of silent
    /// (e.g. the GPU runs **M** as MPS with an infinite skew threshold).
    pub substitution: Option<KernelSubstitution>,
    /// Exact work tallies, for platforms that meter (the modeled CPU/KNL).
    pub work: Option<WorkCounts>,
    /// Host wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// Modeled elapsed seconds, for modeled platforms.
    pub modeled_seconds: Option<f64>,
    /// The SIMD instruction tier the host kernels dispatched to
    /// (`scalar`/`portable`/`avx2`/`avx512`), so measured numbers are
    /// attributable to the tier that actually ran. Modeled platforms emulate
    /// their own lane widths regardless of this tier.
    pub simd_tier: String,
}

/// The outcome of a counting run, for any workload.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The workload's result. CNC yields per-edge counts in the *input*
    /// graph's directed edge offsets; triangle and k-clique counting yield
    /// global tallies.
    pub output: WorkloadOutput,
    /// Host wall-clock seconds for the whole run (including simulation
    /// overhead — not a performance number for modeled platforms).
    pub wall_seconds: f64,
    /// Modeled elapsed seconds, for modeled platforms.
    pub modeled_seconds: Option<f64>,
    /// Platform-specific details.
    pub detail: RunDetail,
    /// The unified report of what ran.
    pub stats: RunStats,
    /// Structured observability snapshot: counters recorded during this run
    /// and the span tree. [`RunReport::disabled`] (empty, `enabled: false`)
    /// when no [`ObsContext`] was installed — observability is ambient and
    /// never perturbs an unobserved run.
    pub report: RunReport,
}

/// The historical name of a CNC run's outcome.
pub type CncResult = RunOutput;

impl RunOutput {
    /// The per-edge counts of a CNC run.
    ///
    /// # Panics
    /// If the run executed a non-CNC workload; use
    /// [`edge_counts`](RunOutput::edge_counts) to branch instead.
    pub fn counts(&self) -> &[u32] {
        self.output
            .edge_counts()
            .expect("per-edge counts exist only for the CNC workload")
    }

    /// The per-edge counts, when this run executed CNC.
    pub fn edge_counts(&self) -> Option<&[u32]> {
        self.output.edge_counts()
    }

    /// Consume into the per-edge counts of a CNC run.
    ///
    /// # Panics
    /// If the run executed a non-CNC workload.
    pub fn into_counts(self) -> Vec<u32> {
        self.output
            .into_edge_counts()
            .expect("per-edge counts exist only for the CNC workload")
    }

    /// Bind a CNC run's counts to their graph for derived analytics.
    ///
    /// # Panics
    /// If the run executed a non-CNC workload.
    pub fn view<'a>(&'a self, g: &'a CsrGraph) -> CncView<'a> {
        CncView::new(g, self.counts())
    }
}

/// A configured platform × algorithm × workload run.
#[derive(Debug, Clone)]
pub struct Runner {
    platform: Platform,
    algorithm: Algorithm,
    reorder: bool,
    workload: WorkloadKind,
}

impl Runner {
    /// A runner for the given platform and algorithm. Degree-descending
    /// reordering defaults to on for BMP (its complexity bound needs it)
    /// and off otherwise; the workload defaults to CNC.
    pub fn new(platform: Platform, algorithm: Algorithm) -> Self {
        let reorder = matches!(algorithm, Algorithm::Bmp(_));
        Self {
            platform,
            algorithm,
            reorder,
            workload: WorkloadKind::Cnc,
        }
    }

    /// Override the degree-descending reordering preprocessing. Counts are
    /// always returned in the *input* graph's edge offsets.
    pub fn reorder(mut self, yes: bool) -> Self {
        self.reorder = yes;
        self
    }

    /// Select the counting workload (CNC by default). Non-CNC workloads
    /// run on the real CPU backends only; other platforms are rejected at
    /// plan time.
    pub fn workload(mut self, kind: WorkloadKind) -> Self {
        self.workload = kind;
        self
    }

    /// The configured workload.
    pub fn workload_kind(&self) -> WorkloadKind {
        self.workload
    }

    /// The configured platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Whether the reordering preprocessing is enabled.
    pub fn reorder_enabled(&self) -> bool {
        self.reorder
    }

    /// The execute-step implementation for the configured platform.
    pub fn backend(&self) -> Box<dyn Backend> {
        match &self.platform {
            Platform::CpuSequential => Box::new(CpuSeqBackend),
            Platform::CpuParallel(cfg) => Box::new(CpuParBackend { cfg: *cfg }),
            Platform::CpuModel {
                threads,
                capacity_scale,
            } => Box::new(ModeledBackend {
                name: "cpu-model",
                processor: ModeledProcessor::cpu_for(*capacity_scale),
                threads: *threads,
                mode: MemMode::Ddr,
            }),
            Platform::Knl {
                threads,
                mode,
                capacity_scale,
            } => Box::new(ModeledBackend {
                name: "knl",
                processor: ModeledProcessor::knl_for(*capacity_scale),
                threads: *threads,
                mode: *mode,
            }),
            Platform::Gpu {
                config,
                capacity_scale,
            } => Box::new(GpuSimBackend {
                config: *config,
                capacity_scale: *capacity_scale,
            }),
        }
    }

    /// The reorder policy a preparation must carry for this runner to
    /// execute without re-deriving anything.
    pub fn reorder_policy(&self) -> ReorderPolicy {
        if self.reorder {
            ReorderPolicy::DegreeDescending
        } else {
            ReorderPolicy::None
        }
    }

    /// Execute on `g`, preparing it on the spot.
    ///
    /// # Panics
    /// On invalid kernel configuration (see [`Runner::try_run`] for the
    /// non-panicking form).
    pub fn run(&self, g: &CsrGraph) -> CncResult {
        self.try_run(g)
            .unwrap_or_else(|e| panic!("cannot run {:?}: {e}", self.algorithm.label()))
    }

    /// Execute on a shared prepared graph.
    ///
    /// # Panics
    /// On invalid kernel configuration (see [`Runner::try_run_prepared`]
    /// for the non-panicking form).
    pub fn run_prepared(&self, prepared: &PreparedGraph) -> CncResult {
        self.try_run_prepared(prepared)
            .unwrap_or_else(|e| panic!("cannot run {:?}: {e}", self.algorithm.label()))
    }

    /// Execute on `g`: prepare (one-shot, matching this runner's reorder
    /// flag), then delegate to [`Runner::try_run_prepared`]. Callers running
    /// the same graph more than once should prepare it themselves and share
    /// the `Arc` — this convenience path re-prepares per call.
    pub fn try_run(&self, g: &CsrGraph) -> Result<CncResult, PlanError> {
        let prepared = PreparedGraph::from_csr(g.clone(), self.reorder_policy());
        self.try_run_prepared(&prepared)
    }

    /// Execute on a prepared graph: plan, execute, report. No preprocessing
    /// happens here — the backend runs on the CSR the preparation already
    /// holds, and reordering only takes effect when the preparation
    /// computed the relabel (counts are then remapped back to the original
    /// graph's offsets).
    pub fn try_run_prepared(&self, prepared: &PreparedGraph) -> Result<CncResult, PlanError> {
        let t0 = Instant::now();
        // Ambient observability: when a context is installed on this thread,
        // the run's stages record spans and every layer below mirrors its
        // counters into the registry. `None` disables everything.
        let obs = ObsContext::current();
        let counters_at_start = obs.as_ref().map(|ctx| ctx.counters());
        // Plan.
        let plan = {
            let _s = obs.as_ref().map(|ctx| ctx.span("plan"));
            self.plan(prepared)?
        };
        let backend = self.backend();
        // Execute. The backend picks the prepared execution graph; counts
        // come back in that graph's offsets.
        let mut exec = {
            let _s = obs.as_ref().map(|ctx| ctx.span("execute"));
            backend.execute(prepared, &plan)
        };
        // The reorder is effective only if the preparation computed tables.
        // Only per-edge outputs live in the executed graph's offsets;
        // global tallies are offset-free and need no remap.
        let effective_reorder = plan.reorder && prepared.reordered().is_some();
        if effective_reorder {
            if let WorkloadOutput::EdgeCounts(counts) = &mut exec.output {
                let r = prepared.reordered().expect("checked above");
                *counts = counts_to_original(prepared.graph(), r, counts);
            }
        }
        if let (Some(ctx), Some(global)) = (&obs, exec.output.global_count()) {
            ctx.add(cnc_obs::Counter::WorkloadGlobalCount, global);
        }
        // Report.
        let wall_seconds = t0.elapsed().as_secs_f64();
        let effective_algorithm = plan
            .substitution
            .as_ref()
            .map(|s| s.effective.clone())
            .unwrap_or_else(|| plan.algorithm.label().to_string());
        let stats = RunStats {
            platform: backend.label(),
            workload: plan.workload.label(),
            requested_algorithm: plan.algorithm.label().to_string(),
            effective_algorithm,
            reordered: effective_reorder,
            substitution: plan.substitution,
            work: exec.work.take(),
            wall_seconds,
            modeled_seconds: exec.modeled_seconds,
            simd_tier: cnc_intersect::SimdTier::resolve().label().to_string(),
        };
        // Counters are diffed against the run's start so one long-lived
        // context (a CLI session, a bench sweep) still yields per-run
        // totals; the span tree is the context's whole recording.
        let report = match (&obs, counters_at_start) {
            (Some(ctx), Some(start)) => RunReport {
                enabled: true,
                counters: ctx.counters().since(&start),
                spans: ctx.recorder().tree(),
                spans_dropped: ctx.recorder().dropped(),
            },
            _ => RunReport::disabled(),
        };
        Ok(RunOutput {
            output: exec.output,
            wall_seconds,
            modeled_seconds: exec.modeled_seconds,
            detail: exec.detail,
            stats,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{reference_counts, verify_counts};
    use cnc_graph::datasets::{Dataset, Scale};
    use cnc_graph::generators;

    fn platforms(scale: f64) -> Vec<Platform> {
        vec![
            Platform::CpuSequential,
            Platform::cpu_parallel(),
            Platform::CpuModel {
                threads: 56,
                capacity_scale: scale,
            },
            Platform::knl_flat(scale),
            Platform::Knl {
                threads: 64,
                mode: MemMode::Ddr,
                capacity_scale: scale,
            },
            Platform::gpu(scale),
        ]
    }

    #[test]
    fn every_platform_algorithm_combination_is_exact() {
        let g = Dataset::LjS.build(Scale::Tiny);
        let scale = Dataset::LjS.capacity_scale(&g);
        let want = reference_counts(&g);
        for platform in platforms(scale) {
            for algorithm in [
                Algorithm::MergeBaseline,
                Algorithm::mps(),
                Algorithm::bmp(),
                Algorithm::bmp_rf(),
            ] {
                let r = Runner::new(platform.clone(), algorithm).run(&g);
                assert_eq!(
                    r.counts(),
                    want,
                    "platform={platform:?} algorithm={}",
                    algorithm.label()
                );
            }
        }
    }

    #[test]
    fn reorder_toggle_does_not_change_counts() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(300, 6.0, 2, 0.4, 3));
        for reorder in [false, true] {
            let r = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf())
                .reorder(reorder)
                .run(&g);
            assert!(verify_counts(&g, r.counts()).is_ok(), "reorder={reorder}");
            assert_eq!(r.stats.reordered, reorder);
        }
    }

    #[test]
    fn modeled_platforms_report_modeled_time() {
        let g = Dataset::FrS.build(Scale::Tiny);
        let scale = Dataset::FrS.capacity_scale(&g);
        let knl = Runner::new(Platform::knl_flat(scale), Algorithm::mps()).run(&g);
        assert!(knl.modeled_seconds.unwrap() > 0.0);
        assert!(matches!(knl.detail, RunDetail::Modeled(_)));
        let gpu = Runner::new(Platform::gpu(scale), Algorithm::bmp_rf()).run(&g);
        assert!(gpu.modeled_seconds.unwrap() > 0.0);
        assert!(matches!(gpu.detail, RunDetail::Gpu(_)));
        let cpu = Runner::new(Platform::cpu_parallel(), Algorithm::mps()).run(&g);
        assert!(cpu.modeled_seconds.is_none());
        assert!(cpu.wall_seconds > 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(Algorithm::MergeBaseline.label(), "M");
        assert_eq!(Algorithm::mps().label(), "MPS");
        assert_eq!(Algorithm::bmp().label(), "BMP");
        assert_eq!(Algorithm::bmp_rf().label(), "BMP-RF");
    }

    #[test]
    fn view_round_trip() {
        let g = CsrGraph::from_edge_list(&generators::clique_chain(4, 8));
        let r = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run(&g);
        assert_eq!(r.view(&g).triangle_count(), 4 * 56);
    }

    #[test]
    fn stats_carry_plan_and_evidence() {
        let g = Dataset::TwS.build(Scale::Tiny);
        let scale = Dataset::TwS.capacity_scale(&g);
        // Modeled platforms meter exactly.
        let knl = Runner::new(Platform::knl_flat(scale), Algorithm::mps()).run(&g);
        assert_eq!(knl.stats.platform, "knl");
        assert_eq!(knl.stats.requested_algorithm, "MPS");
        assert_eq!(knl.stats.effective_algorithm, "MPS");
        assert!(knl.stats.substitution.is_none());
        assert!(knl.stats.work.unwrap().total_ops() > 0);
        assert_eq!(knl.stats.modeled_seconds, knl.modeled_seconds);
        // Real platforms measure, not meter.
        let cpu = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run(&g);
        assert_eq!(cpu.stats.platform, "cpu-par");
        assert!(cpu.stats.work.is_none());
        assert!(cpu.stats.reordered, "BMP defaults to reordering");
        assert!(cpu.stats.wall_seconds > 0.0);
    }

    #[test]
    fn gpu_merge_baseline_substitution_is_explicit() {
        // The GPU has no plain-merge baseline: the runner plans M as MPS
        // with an infinite skew threshold and must say so in the report.
        let g = Dataset::LjS.build(Scale::Tiny);
        let scale = Dataset::LjS.capacity_scale(&g);
        let r = Runner::new(Platform::gpu(scale), Algorithm::MergeBaseline).run(&g);
        assert_eq!(r.counts(), reference_counts(&g));
        let sub = r
            .stats
            .substitution
            .expect("M on GPU must report a substitution");
        assert_eq!(sub.requested, "M");
        assert!(
            sub.effective.contains("MPS"),
            "effective = {}",
            sub.effective
        );
        assert!(sub.effective.contains(&u32::MAX.to_string()));
        assert_eq!(r.stats.effective_algorithm, sub.effective);
        assert_eq!(r.stats.requested_algorithm, "M");
        // Natively supported requests report no substitution — on the GPU
        // and everywhere else.
        let native = Runner::new(Platform::gpu(scale), Algorithm::mps()).run(&g);
        assert!(native.stats.substitution.is_none());
        let cpu = Runner::new(Platform::CpuSequential, Algorithm::MergeBaseline).run(&g);
        assert!(cpu.stats.substitution.is_none());
        assert_eq!(cpu.stats.effective_algorithm, "M");
    }

    #[test]
    fn invalid_rf_ratio_is_rejected_at_plan_time() {
        let g = CsrGraph::from_edge_list(&generators::gnm(50, 200, 1));
        for bad in [0usize, 1, 100] {
            let runner = Runner::new(
                Platform::CpuSequential,
                Algorithm::Bmp(RfChoice::Ratio(bad)),
            );
            let err = runner.try_run(&g).expect_err("ratio must be rejected");
            let msg = err.to_string();
            assert!(
                msg.contains("power of two") || msg.contains("at least 2"),
                "unhelpful error: {msg}"
            );
            let pg = PreparedGraph::from_csr(g.clone(), runner.reorder_policy());
            assert!(runner.plan(&pg).is_err());
        }
        // A valid explicit ratio still runs.
        let ok = Runner::new(Platform::CpuSequential, Algorithm::Bmp(RfChoice::Ratio(64)))
            .try_run(&g)
            .unwrap();
        assert_eq!(ok.counts(), reference_counts(&g));
    }

    #[test]
    fn plan_resolves_scaled_rf_against_graph_size() {
        let g = CsrGraph::from_edge_list(&generators::gnm(40_000, 80_000, 2));
        let n = g.num_vertices();
        let bmp = Runner::new(Platform::CpuSequential, Algorithm::bmp_rf());
        let plan = bmp
            .plan(&PreparedGraph::from_csr(g.clone(), bmp.reorder_policy()))
            .unwrap();
        assert_eq!(
            plan.cpu_kernel,
            cnc_cpu::CpuKernel::Bmp(BmpMode::rf_scaled(n))
        );
        assert!(plan.reorder);
        assert!(plan.partitioning.is_none());
        let mps = Runner::new(Platform::cpu_parallel(), Algorithm::mps());
        let par_plan = mps
            .plan(&PreparedGraph::from_csr(g, mps.reorder_policy()))
            .unwrap();
        assert_eq!(par_plan.partitioning, Some(ParConfig::default()));
    }

    #[test]
    fn shared_preparation_reorders_exactly_once() {
        // The acceptance property of the preparation layer: two runs over
        // the same Arc<PreparedGraph> perform exactly one degree-descending
        // relabel — during prepare — and none during execution.
        let g = Dataset::WiS.build(Scale::Tiny);
        let runner = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf());
        let before = cnc_graph::prepare::metrics();
        let pg = PreparedGraph::from_csr(g.clone(), runner.reorder_policy());
        let after_prepare = cnc_graph::prepare::metrics();
        assert_eq!(after_prepare.since(&before).reorders, 1);
        let r1 = runner.run_prepared(&pg);
        let r2 = runner.run_prepared(&pg);
        let after_runs = cnc_graph::prepare::metrics();
        assert_eq!(
            after_runs.since(&after_prepare).reorders,
            0,
            "running must not re-reorder"
        );
        assert_eq!(after_runs.since(&after_prepare).graph_builds, 0);
        assert_eq!(r1.counts(), r2.counts());
        assert_eq!(r1.counts(), reference_counts(&g));
        assert!(r1.stats.reordered && r2.stats.reordered);
    }

    #[test]
    fn every_backend_matches_reference_on_every_dataset() {
        // All backends, all datasets, one shared preparation each: counts
        // must equal the sequential reference in original edge offsets.
        // Route the disk cache to a throwaway directory so the test leaves
        // no files in the repository tree.
        let dir = std::env::temp_dir().join(format!("cnc-core-prep-{}", std::process::id()));
        std::env::set_var("CNC_CACHE_DIR", &dir);
        for d in Dataset::ALL {
            let pg = d.prepare(Scale::Tiny, cnc_graph::ReorderPolicy::DegreeDescending);
            let want = reference_counts(pg.graph());
            for platform in platforms(pg.capacity_scale()) {
                for algorithm in [Algorithm::mps(), Algorithm::bmp_rf()] {
                    let r = Runner::new(platform.clone(), algorithm).run_prepared(&pg);
                    assert_eq!(
                        r.counts(),
                        want,
                        "dataset={} platform={platform:?} algorithm={}",
                        d.name(),
                        algorithm.label()
                    );
                }
            }
        }
        std::env::remove_var("CNC_CACHE_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observed_run_reports_exact_kernel_counters_and_span_tree() {
        use cnc_obs::Counter as C;
        let g = Dataset::LjS.build(Scale::Tiny);
        let runner = Runner::new(Platform::cpu_parallel(), Algorithm::mps());
        // Ground truth: a plain metered run of the same plan.
        let pg = PreparedGraph::from_csr(g.clone(), runner.reorder_policy());
        let plan = runner.plan(&pg).unwrap();
        let (want_counts, want_work) = plan
            .cpu_kernel
            .run_par_metered(pg.graph(), &cnc_cpu::ParConfig::default());
        // Observed run: counters must equal the meter totals, counts must be
        // untouched by the instrumentation.
        let ctx = std::sync::Arc::new(ObsContext::new());
        let r = {
            let _g = ctx.install();
            runner.run_prepared(&pg)
        };
        assert_eq!(r.counts(), want_counts, "observability must not perturb");
        assert!(r.report.enabled);
        assert_eq!(r.report.counter(C::KernelScalarOps), want_work.scalar_ops);
        assert_eq!(r.report.counter(C::KernelSeqBytes), want_work.seq_bytes);
        assert_eq!(
            r.report.counter(C::KernelIntersections),
            want_work.intersections
        );
        assert_eq!(r.stats.work, Some(want_work));
        assert!(r.report.counter(C::DriverTasks) > 0);
        // Span tree: plan and execute at the roots, then the workload span,
        // the parallel kernel, and its per-task spans nested beneath.
        let names: Vec<_> = r.report.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"plan"), "roots: {names:?}");
        let exec = r
            .report
            .spans
            .iter()
            .find(|s| s.name == "execute")
            .expect("execute span");
        let workload = exec
            .children
            .iter()
            .find(|s| s.name == "workload")
            .expect("workload span under execute");
        let kernel = workload
            .children
            .iter()
            .find(|s| s.name == "kernel")
            .expect("kernel span under workload");
        assert!(
            kernel.children.iter().all(|t| t.name == "task"),
            "kernel children must be task spans"
        );
        assert_eq!(
            kernel.children.len() as u64,
            r.report.counter(C::DriverTasks)
        );
        assert!(kernel.children.iter().all(|t| t.items > 0));
        // Second run on the same context: per-run counter diffing.
        let r2 = {
            let _g = ctx.install();
            runner.run_prepared(&pg)
        };
        assert_eq!(
            r2.report.counter(C::KernelIntersections),
            want_work.intersections,
            "counters must be per-run, not cumulative"
        );
        // Unobserved runs carry a disabled, empty report.
        let plain = runner.run_prepared(&pg);
        assert!(!plain.report.enabled);
        assert_eq!(plain.report.counter(C::KernelScalarOps), 0);
        assert!(plain.report.spans.is_empty());
        assert_eq!(plain.counts(), want_counts);
    }

    #[test]
    fn observed_modeled_and_gpu_runs_record_platform_counters() {
        use cnc_obs::Counter as C;
        let g = Dataset::FrS.build(Scale::Tiny);
        let scale = Dataset::FrS.capacity_scale(&g);
        let pg = PreparedGraph::from_csr(g, cnc_graph::ReorderPolicy::DegreeDescending);
        let knl_ctx = std::sync::Arc::new(ObsContext::new());
        let knl = {
            let _g = knl_ctx.install();
            Runner::new(Platform::knl_flat(scale), Algorithm::mps()).run_prepared(&pg)
        };
        assert_eq!(
            knl.report.counter(C::KernelIntersections),
            knl.stats.work.unwrap().intersections
        );
        assert!(knl.report.counter(C::ModelEstimates) >= 1);
        assert!(knl.report.counter(C::ModelElapsedNanos) > 0);
        let gpu_ctx = std::sync::Arc::new(ObsContext::new());
        let gpu = {
            let _g = gpu_ctx.install();
            Runner::new(Platform::gpu(scale), Algorithm::bmp_rf()).run_prepared(&pg)
        };
        assert!(gpu.report.counter(C::GpuWarpInstrs) > 0);
        assert!(gpu.report.counter(C::GpuBlocks) > 0);
        assert!(gpu.report.counter(C::GpuPasses) >= 1);
        if let RunDetail::Gpu(rep) = &gpu.detail {
            assert_eq!(gpu.report.counter(C::GpuFaults), rep.faults);
            assert_eq!(
                gpu.report.counter(C::GpuScatteredTrans),
                rep.stats.scattered_trans
            );
        } else {
            panic!("gpu detail expected");
        }
    }

    #[test]
    fn unreordered_preparation_downgrades_gracefully() {
        // A runner that wants reordering but receives a ReorderPolicy::None
        // preparation still produces exact counts and reports what happened.
        let g = Dataset::LjS.build(Scale::Tiny);
        let pg = PreparedGraph::from_csr(g.clone(), cnc_graph::ReorderPolicy::None);
        let r = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run_prepared(&pg);
        assert_eq!(r.counts(), reference_counts(&g));
        assert!(
            !r.stats.reordered,
            "no tables → reorder cannot be effective"
        );
    }
}
