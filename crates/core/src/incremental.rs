//! Incremental maintenance of the all-edge common neighbor counts under
//! edge insertions and deletions.
//!
//! The paper's motivation is *online* analytics — "recommend products of
//! potential interest while the user is shopping" — which implies the graph
//! mutates between queries. Recomputing all `|E|` intersections per update
//! defeats the purpose; this module maintains the counts exactly under
//! single-edge updates in `O(d_u + d_v)` time each:
//!
//! * inserting `(u, v)` sets `cnt[(u,v)] = |N(u) ∩ N(v)|` and increments
//!   `cnt[(x,u)]` and `cnt[(x,v)]` for every common neighbor `x` (each new
//!   triangle `u-v-x` adds one shared neighbor to both of its old edges);
//! * deleting `(u, v)` does the reverse.
//!
//! Batch-initialize from a [`CsrGraph`] counted by any backend, mutate, and
//! [`IncrementalCnc::snapshot`] back to CSR + counts when a bulk recount or
//! a static analysis is wanted.

use std::collections::HashMap;

use cnc_graph::CsrGraph;
use cnc_intersect::{merge_collect, NullMeter};

/// Why an incremental operation rejected its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementalError {
    /// The counts slice does not align with the graph's directed edge slots.
    CountsLengthMismatch {
        /// `g.num_directed_edges()`.
        expected: usize,
        /// `counts.len()` as passed.
        got: usize,
    },
    /// `(u, u)` edges are not representable.
    SelfLoop(u32),
    /// An endpoint is not a vertex of the graph.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: u32,
        /// Current vertex-id bound.
        num_vertices: usize,
    },
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrementalError::CountsLengthMismatch { expected, got } => write!(
                f,
                "counts length {got} does not match {expected} directed edge slots"
            ),
            IncrementalError::SelfLoop(u) => {
                write!(f, "self-loop ({u}, {u}) is not representable")
            }
            IncrementalError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(f, "vertex {vertex} out of range (|V| = {num_vertices})"),
        }
    }
}

impl std::error::Error for IncrementalError {}

/// Dynamically maintained graph + exact per-edge common neighbor counts.
#[derive(Debug, Clone, Default)]
pub struct IncrementalCnc {
    /// Sorted neighbor lists.
    adj: Vec<Vec<u32>>,
    /// Canonical `(min, max)` edge → count.
    counts: HashMap<(u32, u32), u32>,
    scratch: Vec<u32>,
}

impl IncrementalCnc {
    /// An empty graph over `num_vertices` ids.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            adj: vec![Vec::new(); num_vertices],
            counts: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// Initialize from a static graph and its (verified) counts.
    ///
    /// Fails with [`IncrementalError::CountsLengthMismatch`] when `counts`
    /// is not aligned to `g`'s directed edge slots.
    pub fn from_graph(g: &CsrGraph, counts: &[u32]) -> Result<Self, IncrementalError> {
        if counts.len() != g.num_directed_edges() {
            return Err(IncrementalError::CountsLengthMismatch {
                expected: g.num_directed_edges(),
                got: counts.len(),
            });
        }
        let adj: Vec<Vec<u32>> = (0..g.num_vertices() as u32)
            .map(|u| g.neighbors(u).to_vec())
            .collect();
        let mut map = HashMap::with_capacity(g.num_undirected_edges());
        for (eid, u, v) in g.iter_edges() {
            if u < v {
                map.insert((u, v), counts[eid]);
            }
        }
        Ok(Self {
            adj,
            counts: map,
            scratch: Vec::new(),
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.counts.len()
    }

    /// Append a fresh isolated vertex, returning its id.
    pub fn add_vertex(&mut self) -> u32 {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as u32
    }

    /// The current count for an edge, `None` if `(u, v)` is not present.
    pub fn count(&self, u: u32, v: u32) -> Option<u32> {
        self.counts.get(&canonical(u, v)).copied()
    }

    /// The sorted neighbor list of `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Total triangles, maintained exactly: `Σ cnt / 3` over undirected
    /// edges (each triangle contributes one common neighbor to each of its
    /// three edges).
    pub fn triangle_count(&self) -> u64 {
        self.counts.values().map(|&c| c as u64).sum::<u64>() / 3
    }

    /// Insert the undirected edge `(u, v)`; returns `Ok(false)` if it
    /// already exists (no change). Self-loops and out-of-range endpoints
    /// are typed errors, not panics. `O(d_u + d_v)`.
    pub fn insert_edge(&mut self, u: u32, v: u32) -> Result<bool, IncrementalError> {
        if u == v {
            return Err(IncrementalError::SelfLoop(u));
        }
        if (u.max(v) as usize) >= self.adj.len() {
            return Err(IncrementalError::VertexOutOfRange {
                vertex: u.max(v),
                num_vertices: self.adj.len(),
            });
        }
        let (a, b) = canonical(u, v);
        if self.counts.contains_key(&(a, b)) {
            return Ok(false);
        }
        // Common neighbors BEFORE linking (u ∉ N(v) and v ∉ N(u) yet).
        let mut scratch = std::mem::take(&mut self.scratch);
        merge_collect(
            &self.adj[a as usize],
            &self.adj[b as usize],
            &mut scratch,
            &mut NullMeter,
        );
        for &x in &scratch {
            *self.counts.get_mut(&canonical(x, a)).expect("edge (x,a)") += 1;
            *self.counts.get_mut(&canonical(x, b)).expect("edge (x,b)") += 1;
        }
        self.counts.insert((a, b), scratch.len() as u32);
        insert_sorted(&mut self.adj[a as usize], b);
        insert_sorted(&mut self.adj[b as usize], a);
        self.scratch = scratch;
        Ok(true)
    }

    /// Remove the undirected edge `(u, v)`; returns `false` if absent.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> bool {
        let (a, b) = canonical(u, v);
        if self.counts.remove(&(a, b)).is_none() {
            return false;
        }
        remove_sorted(&mut self.adj[a as usize], b);
        remove_sorted(&mut self.adj[b as usize], a);
        // Common neighbors AFTER unlinking.
        let mut scratch = std::mem::take(&mut self.scratch);
        merge_collect(
            &self.adj[a as usize],
            &self.adj[b as usize],
            &mut scratch,
            &mut NullMeter,
        );
        for &x in &scratch {
            *self.counts.get_mut(&canonical(x, a)).expect("edge (x,a)") -= 1;
            *self.counts.get_mut(&canonical(x, b)).expect("edge (x,b)") -= 1;
        }
        self.scratch = scratch;
        true
    }

    /// Snapshot to a static CSR plus counts aligned to its edge offsets.
    pub fn snapshot(&self) -> (CsrGraph, Vec<u32>) {
        let g = CsrGraph::from_undirected_pairs(self.adj.len(), self.counts.keys().copied());
        let counts = g
            .iter_edges()
            .map(|(_, u, v)| self.counts[&canonical(u, v)])
            .collect();
        (g, counts)
    }
}

#[inline]
fn canonical(u: u32, v: u32) -> (u32, u32) {
    (u.min(v), u.max(v))
}

fn insert_sorted(list: &mut Vec<u32>, v: u32) {
    if let Err(pos) = list.binary_search(&v) {
        list.insert(pos, v);
    }
}

fn remove_sorted(list: &mut Vec<u32>, v: u32) {
    if let Ok(pos) = list.binary_search(&v) {
        list.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{reference_counts, verify_counts};
    use cnc_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Invariant check: every maintained count equals a fresh recount.
    fn assert_exact(inc: &IncrementalCnc) {
        let (g, counts) = inc.snapshot();
        verify_counts(&g, &counts).expect("incremental counts must stay exact");
    }

    #[test]
    fn build_triangle_incrementally() {
        let mut inc = IncrementalCnc::new(3);
        assert!(inc.insert_edge(0, 1).unwrap());
        assert!(inc.insert_edge(1, 2).unwrap());
        assert_eq!(inc.count(0, 1), Some(0));
        assert!(inc.insert_edge(0, 2).unwrap()); // closes the triangle
        assert_eq!(inc.count(0, 1), Some(1));
        assert_eq!(inc.count(1, 2), Some(1));
        assert_eq!(inc.count(0, 2), Some(1));
        assert_eq!(inc.triangle_count(), 1);
        assert_exact(&inc);
    }

    #[test]
    fn duplicate_and_missing_edges() {
        let mut inc = IncrementalCnc::new(4);
        assert!(inc.insert_edge(0, 1).unwrap());
        assert!(
            !inc.insert_edge(1, 0).unwrap(),
            "duplicate insert is a no-op"
        );
        assert_eq!(inc.num_edges(), 1);
        assert!(!inc.remove_edge(2, 3), "missing removal is a no-op");
        assert!(inc.remove_edge(0, 1));
        assert_eq!(inc.num_edges(), 0);
        assert_eq!(inc.count(0, 1), None);
    }

    #[test]
    fn remove_reopens_triangles() {
        let mut inc = IncrementalCnc::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            inc.insert_edge(u, v).unwrap();
        }
        assert_eq!(inc.triangle_count(), 2);
        inc.remove_edge(1, 2); // breaks both triangles
        assert_eq!(inc.triangle_count(), 0);
        assert_eq!(inc.count(0, 1), Some(0));
        assert_exact(&inc);
    }

    #[test]
    fn from_graph_then_mutate() {
        let g = CsrGraph::from_edge_list(&generators::clique_chain(3, 5));
        let counts = reference_counts(&g);
        let mut inc = IncrementalCnc::from_graph(&g, &counts).unwrap();
        assert_eq!(inc.triangle_count(), 3 * 10, "three K5s worth of triangles");
        // Bridge two cliques into one denser community.
        inc.insert_edge(0, 5).unwrap();
        inc.insert_edge(1, 6).unwrap();
        assert_exact(&inc);
        let grown = inc.add_vertex();
        inc.insert_edge(grown, 0).unwrap();
        inc.insert_edge(grown, 1).unwrap();
        assert_eq!(inc.count(grown, 0), Some(1), "0 and grown share 1");
        assert_exact(&inc);
    }

    #[test]
    fn random_edit_sequence_stays_exact() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40u32;
        let mut inc = IncrementalCnc::new(n as usize);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for step in 0..400 {
            let insert = edges.is_empty() || rng.gen::<f64>() < 0.6;
            if insert {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && inc.insert_edge(u, v).unwrap() {
                    edges.push(canonical(u, v));
                }
            } else {
                let idx = rng.gen_range(0..edges.len());
                let (u, v) = edges.swap_remove(idx);
                assert!(inc.remove_edge(u, v));
            }
            if step % 50 == 49 {
                assert_exact(&inc);
            }
        }
        assert_exact(&inc);
    }

    #[test]
    fn snapshot_matches_batch_backend() {
        // Counts maintained through edits equal a from-scratch parallel
        // BMP run on the final graph.
        let mut inc = IncrementalCnc::new(60);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let u = rng.gen_range(0..60);
            let v = rng.gen_range(0..60);
            if u != v {
                inc.insert_edge(u, v).unwrap();
            }
        }
        let (g, maintained) = inc.snapshot();
        let batch =
            crate::Runner::new(crate::Platform::cpu_parallel(), crate::Algorithm::bmp_rf()).run(&g);
        assert_eq!(maintained, batch.counts());
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        let mut inc = IncrementalCnc::new(2);
        assert_eq!(inc.insert_edge(1, 1), Err(IncrementalError::SelfLoop(1)));
        assert_eq!(
            inc.insert_edge(0, 7),
            Err(IncrementalError::VertexOutOfRange {
                vertex: 7,
                num_vertices: 2
            })
        );
        let g = CsrGraph::from_edge_list(&generators::gnm(10, 20, 1));
        let err = IncrementalCnc::from_graph(&g, &[0, 0]).unwrap_err();
        assert!(matches!(
            err,
            IncrementalError::CountsLengthMismatch { got: 2, .. }
        ));
        assert!(err.to_string().contains("does not match"));
    }
}
