//! Independent verification of count arrays.

use cnc_graph::CsrGraph;
use rayon::prelude::*;

/// Reference counts via an independent two-pointer implementation
/// (`cnc_intersect::reference_count`), computed for every directed edge slot
/// directly — no symmetric assignment, no skew handling, no index.
pub fn reference_counts(g: &CsrGraph) -> Vec<u32> {
    let dst = g.dst();
    (0..g.num_directed_edges())
        .into_par_iter()
        .map(|eid| {
            let mut hint = 0u32;
            let u = g.find_src(eid, &mut hint);
            let v = dst[eid];
            cnc_intersect::reference_count(g.neighbors(u), g.neighbors(v))
        })
        .collect()
}

/// A verification failure: the first mismatching edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Edge offset that disagrees.
    pub eid: usize,
    /// Source vertex.
    pub u: u32,
    /// Destination vertex.
    pub v: u32,
    /// Count under test.
    pub got: u32,
    /// Reference count.
    pub want: u32,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cnt[e({}, {})] (offset {}) = {}, reference says {}",
            self.u, self.v, self.eid, self.got, self.want
        )
    }
}

impl std::error::Error for VerifyError {}

/// Check `counts` against the reference; `Ok` or the first mismatch.
pub fn verify_counts(g: &CsrGraph, counts: &[u32]) -> Result<(), VerifyError> {
    if counts.len() != g.num_directed_edges() {
        return Err(VerifyError {
            eid: usize::MAX,
            u: 0,
            v: 0,
            got: counts.len() as u32,
            want: g.num_directed_edges() as u32,
        });
    }
    let want = reference_counts(g);
    for (eid, u, v) in g.iter_edges() {
        if counts[eid] != want[eid] {
            return Err(VerifyError {
                eid,
                u,
                v,
                got: counts[eid],
                want: want[eid],
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::{generators, EdgeList};

    #[test]
    fn reference_on_triangle() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs([(0, 1), (1, 2), (0, 2)]));
        let c = reference_counts(&g);
        assert!(c.iter().all(|&x| x == 1));
        assert!(verify_counts(&g, &c).is_ok());
    }

    #[test]
    fn detects_mismatch() {
        let g = CsrGraph::from_edge_list(&generators::complete(5));
        let mut c = reference_counts(&g);
        c[3] += 1;
        let err = verify_counts(&g, &c).unwrap_err();
        assert_eq!(err.eid, 3);
        assert_eq!(err.got, err.want + 1);
        assert!(err.to_string().contains("offset 3"));
    }

    #[test]
    fn detects_length_mismatch() {
        let g = CsrGraph::from_edge_list(&generators::path(4));
        assert!(verify_counts(&g, &[0, 0]).is_err());
    }
}
