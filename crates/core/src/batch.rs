//! Point-query batch sessions: the plan/backend entry the serving layer
//! executes through.
//!
//! A [`BatchSession`] is a planned run held open: one `Arc<PreparedGraph>`,
//! one validated [`Plan`], and one resident [`BatchCounter`] whose kernel
//! pool (BMP's `|V|`-bit bitmaps) survives across batches. Each
//! [`count_batch`](BatchSession::count_batch) call answers a whole batch of
//! `count(u, v)` point queries the way a bulk pass would:
//!
//! 1. map original vertex ids into the execution graph (degree-descending
//!    relabel, when the plan reorders) and canonicalize to `u < v`;
//! 2. sort by source and deduplicate — duplicate queries in one batch are
//!    answered by a single kernel probe;
//! 3. execute the unique pairs as one cost-balanced, source-aligned
//!    schedule (`cnc_cpu::count_pairs`), building per-source kernel state
//!    once per source per batch;
//! 4. scatter the counts back to the callers' query order.
//!
//! `topk` / `scan` queries are answered from a lazily computed, cached bulk
//! pass over the whole edge set (they need every count anyway).
//!
//! Sessions execute on the real CPU backends only — the modeled platforms
//! estimate whole passes and have no point-query entry
//! ([`PlanError::UnsupportedBatchPlatform`]).

use std::sync::{Arc, Mutex};

use cnc_cpu::{BatchCounter, PoolStats, SchedulePolicy};
use cnc_graph::PreparedGraph;
use cnc_obs::ObsContext;
use cnc_workload::WorkloadKind;

use crate::plan::{Plan, PlanError};
use crate::runner::{Platform, Runner};

/// One counted edge, in the input graph's vertex ids (`u < v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCount {
    /// Smaller endpoint.
    pub u: u32,
    /// Larger endpoint.
    pub v: u32,
    /// `|N(u) ∩ N(v)|`.
    pub count: u32,
}

/// The outcome of one coalesced batch.
#[derive(Debug, Clone)]
pub struct BatchAnswers {
    /// One answer per query, in query order: `Some(count)` for edges of the
    /// graph, `None` for pairs that are not edges (including out-of-range
    /// vertex ids and self-loops).
    pub answers: Vec<Option<u32>>,
    /// Distinct canonical pairs actually executed — the coalescing
    /// evidence: `queries.len() - unique_pairs` answers were satisfied by
    /// another query's kernel probe.
    pub unique_pairs: usize,
}

/// A resident, planned point-query executor over one prepared graph.
pub struct BatchSession {
    runner: Runner,
    prepared: Arc<PreparedGraph>,
    plan: Plan,
    counter: BatchCounter,
    tasks: usize,
    /// Bulk counts in *original* edge offsets, computed once on first
    /// `topk`/`scan` and shared from then on.
    bulk: Mutex<Option<Arc<Vec<u32>>>>,
}

impl std::fmt::Debug for BatchSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSession")
            .field("plan", &self.plan)
            .field("tasks", &self.tasks)
            .finish()
    }
}

impl BatchSession {
    /// Plan `runner` against `prepared` and hold the result open for
    /// batched point queries.
    ///
    /// Rejects non-CPU platforms ([`PlanError::UnsupportedBatchPlatform`])
    /// and non-CNC workloads ([`PlanError::UnsupportedWorkload`]) — point
    /// queries are common-neighbor counts by definition. The session runs
    /// on the global rayon pool; a `ParConfig` thread override is ignored.
    pub fn new(runner: Runner, prepared: Arc<PreparedGraph>) -> Result<Self, PlanError> {
        let plan = runner.plan(&prepared)?;
        if !matches!(
            runner.platform(),
            Platform::CpuSequential | Platform::CpuParallel(_)
        ) {
            return Err(PlanError::UnsupportedBatchPlatform {
                platform: runner.backend().label(),
            });
        }
        if plan.workload != WorkloadKind::Cnc {
            return Err(PlanError::UnsupportedWorkload {
                workload: plan.workload.label(),
                platform: "point-query batch".to_string(),
            });
        }
        let tasks = match &plan.partitioning {
            None => 1,
            Some(cfg) => match cfg.schedule {
                SchedulePolicy::Balanced { tasks } => tasks,
                // The uniform policy's fixed edge-chunk size has no meaning
                // for a pair list; default to a few tasks per worker.
                SchedulePolicy::Uniform { .. } => default_batch_tasks(),
            },
        };
        let n = prepared.graph().num_vertices();
        let counter = BatchCounter::new(plan.cpu_kernel, n);
        Ok(Self {
            runner,
            prepared,
            plan,
            counter,
            tasks,
            bulk: Mutex::new(None),
        })
    }

    /// The resolved plan this session executes.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The preparation this session serves.
    pub fn prepared(&self) -> &Arc<PreparedGraph> {
        &self.prepared
    }

    /// Kernel-pool usage across every batch so far (`None` for stateless
    /// kernels). `created` staying at the worker bound however many batches
    /// ran is the cross-batch reuse evidence.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.counter.pool_stats()
    }

    /// Answer a batch of `(u, v)` point queries (original vertex ids, any
    /// order, duplicates welcome) as one deduplicated, source-aligned,
    /// cost-balanced schedule. Recorded under an `execute` span when an
    /// [`ObsContext`] is installed.
    pub fn count_batch(&self, queries: &[(u32, u32)]) -> BatchAnswers {
        let obs = ObsContext::current();
        let _span = obs.as_ref().map(|ctx| ctx.span("execute"));
        let g_exec = self.prepared.execution_graph(self.plan.reorder);
        let remap = if self.plan.reorder {
            self.prepared.reordered()
        } else {
            None
        };
        let n = g_exec.num_vertices() as u32;
        let mut answers = vec![None; queries.len()];
        // Canonical execution-graph pair per answerable query.
        let mut keyed: Vec<((u32, u32), u32)> = Vec::with_capacity(queries.len());
        for (i, &(u, v)) in queries.iter().enumerate() {
            if u >= n || v >= n || u == v {
                continue;
            }
            let (mut a, mut b) = match remap {
                Some(r) => (r.to_new(u), r.to_new(v)),
                None => (u, v),
            };
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            if g_exec.edge_offset(a, b).is_some() {
                keyed.push(((a, b), i as u32));
            }
        }
        keyed.sort_unstable();
        let mut unique: Vec<(u32, u32)> = Vec::with_capacity(keyed.len());
        for &(pair, _) in &keyed {
            if unique.last() != Some(&pair) {
                unique.push(pair);
            }
        }
        let counts = self.counter.count_pairs(g_exec, &unique, self.tasks);
        let mut at = 0usize;
        for &(pair, qi) in &keyed {
            while unique[at] != pair {
                at += 1;
            }
            answers[qi as usize] = Some(counts[at]);
        }
        BatchAnswers {
            answers,
            unique_pairs: unique.len(),
        }
    }

    /// The cached full-pass counts (original edge offsets), computed on
    /// first use via this session's runner.
    fn bulk_counts(&self) -> Arc<Vec<u32>> {
        {
            let cached = self.bulk.lock().expect("bulk lock poisoned");
            if let Some(c) = cached.as_ref() {
                return Arc::clone(c);
            }
        }
        // Run outside the lock: a bulk pass can take a while and `topk`
        // probes from connection threads must not pile up on a poisoned
        // mutex if it panics. Losing the race just recomputes once.
        let run = self
            .runner
            .try_run_prepared(&self.prepared)
            .expect("session plan already validated");
        let counts = Arc::new(run.into_counts());
        let mut cached = self.bulk.lock().expect("bulk lock poisoned");
        Arc::clone(cached.get_or_insert(counts))
    }

    /// The `k` highest-count edges, ordered by descending count then
    /// ascending `(u, v)` (deterministic across runs), plus the number of
    /// candidate edges *before* truncation to `k` — the untruncated total
    /// the serve protocol reports, mirroring [`BatchSession::scan`].
    pub fn topk(&self, k: usize) -> (usize, Vec<EdgeCount>) {
        let bulk = self.bulk_counts();
        let g = self.prepared.graph();
        let mut all: Vec<EdgeCount> = g
            .iter_edges()
            .filter(|&(_, u, v)| u < v)
            .map(|(eid, u, v)| EdgeCount {
                u,
                v,
                count: bulk[eid],
            })
            .collect();
        all.sort_unstable_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| (a.u, a.v).cmp(&(b.u, b.v)))
        });
        let total = all.len();
        all.truncate(k);
        (total, all)
    }

    /// Every edge with `count >= threshold`, in `(u, v)` order, truncated
    /// to `limit` entries; the untruncated total comes back alongside.
    pub fn scan(&self, threshold: u32, limit: usize) -> (usize, Vec<EdgeCount>) {
        let bulk = self.bulk_counts();
        let g = self.prepared.graph();
        let mut total = 0usize;
        let mut hits = Vec::new();
        for (eid, u, v) in g.iter_edges() {
            if u < v && bulk[eid] >= threshold {
                total += 1;
                if hits.len() < limit {
                    hits.push(EdgeCount {
                        u,
                        v,
                        count: bulk[eid],
                    });
                }
            }
        }
        (total, hits)
    }
}

fn default_batch_tasks() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_mul(4))
        .unwrap_or(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Algorithm;
    use crate::verify::reference_counts;
    use cnc_graph::datasets::{Dataset, Scale};
    use cnc_graph::ReorderPolicy;
    use rand::{Rng, SeedableRng, StdRng};

    fn session(algorithm: Algorithm) -> (BatchSession, Vec<u32>) {
        let runner = Runner::new(Platform::cpu_parallel(), algorithm);
        let g = Dataset::TwS.build(Scale::Tiny);
        let want = reference_counts(&g);
        let pg = PreparedGraph::from_csr(g, runner.reorder_policy());
        (BatchSession::new(runner, pg).expect("plannable"), want)
    }

    #[test]
    fn batched_answers_match_the_sequential_oracle() {
        for algorithm in [
            Algorithm::MergeBaseline,
            Algorithm::mps(),
            Algorithm::bmp_rf(),
        ] {
            let (s, want) = session(algorithm);
            let g = s.prepared().graph().clone();
            let queries: Vec<(u32, u32)> = g
                .iter_edges()
                .map(|(_, u, v)| (u, v)) // both directions, unsorted
                .collect();
            let out = s.count_batch(&queries);
            for (q, &(u, v)) in queries.iter().enumerate() {
                let eid = g.edge_offset(u, v).expect("query is an edge");
                assert_eq!(
                    out.answers[q],
                    Some(want[eid]),
                    "{algorithm:?} query ({u},{v})"
                );
            }
            // Both directions of each edge coalesce onto one canonical pair.
            assert_eq!(out.unique_pairs, queries.len() / 2, "{algorithm:?}");
        }
    }

    #[test]
    fn duplicates_coalesce_and_non_edges_answer_none() {
        let (s, want) = session(Algorithm::bmp_rf());
        let g = s.prepared().graph().clone();
        let (_, u, v) = g.iter_edges().find(|&(_, u, v)| u < v).expect("an edge");
        let eid = g.edge_offset(u, v).expect("edge");
        let n = g.num_vertices() as u32;
        let non_edge = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .find(|&(a, b)| g.edge_offset(a, b).is_none())
            .expect("analogue graphs are sparse");
        let queries = vec![(u, v), (v, u), non_edge, (u, v), (n, 0), (u, u)];
        let out = s.count_batch(&queries);
        assert_eq!(out.answers[0], Some(want[eid]));
        assert_eq!(out.answers[1], Some(want[eid]));
        assert_eq!(out.answers[3], Some(want[eid]));
        assert_eq!(out.answers[2], None, "non-adjacent pair");
        assert_eq!(out.answers[4], None, "out-of-range vertex");
        assert_eq!(out.answers[5], None, "self-loop");
        assert_eq!(out.unique_pairs, 1, "three aliases of one pair");
        assert!(s.count_batch(&[]).answers.is_empty());
    }

    #[test]
    fn kernel_pool_survives_across_batches() {
        let (s, _) = session(Algorithm::bmp_rf());
        let g = s.prepared().graph().clone();
        let mut rng = StdRng::seed_from_u64(42);
        let edges: Vec<(u32, u32)> = g
            .iter_edges()
            .filter(|&(_, u, v)| u < v)
            .map(|(_, u, v)| (u, v))
            .collect();
        for _ in 0..30 {
            let batch: Vec<(u32, u32)> = (0..64)
                .map(|_| edges[rng.gen_range(0..edges.len())])
                .collect();
            s.count_batch(&batch);
        }
        let stats = s.pool_stats().expect("bmp session has a pool");
        assert!(
            stats.created <= rayon::current_num_threads() * 2 + 1,
            "created {} bitmaps over 30 batches",
            stats.created
        );
        assert!(stats.reused > 0);
    }

    #[test]
    fn topk_and_scan_agree_with_reference_counts() {
        let (s, want) = session(Algorithm::mps());
        let g = s.prepared().graph().clone();
        let mut all: Vec<EdgeCount> = g
            .iter_edges()
            .filter(|&(_, u, v)| u < v)
            .map(|(eid, u, v)| EdgeCount {
                u,
                v,
                count: want[eid],
            })
            .collect();
        all.sort_unstable_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| (a.u, a.v).cmp(&(b.u, b.v)))
        });
        let (top_total, top) = s.topk(5);
        assert_eq!(top_total, all.len(), "topk total is pre-truncation");
        assert_eq!(top, all[..5.min(all.len())].to_vec());
        let threshold = top[0].count;
        let (total, hits) = s.scan(threshold, 1_000_000);
        assert_eq!(total, all.iter().filter(|e| e.count >= threshold).count());
        assert!(hits.iter().all(|e| e.count >= threshold));
        assert_eq!(total, hits.len());
        let (capped_total, capped) = s.scan(0, 3);
        assert_eq!(capped_total, all.len());
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn non_cpu_platforms_and_non_cnc_workloads_are_rejected() {
        let g = Dataset::TwS.build(Scale::Tiny);
        let pg = PreparedGraph::from_csr(g, ReorderPolicy::None);
        let scale = 1.0;
        let modeled = Runner::new(Platform::knl_flat(scale), Algorithm::mps());
        match BatchSession::new(modeled, Arc::clone(&pg)) {
            Err(PlanError::UnsupportedBatchPlatform { platform }) => {
                assert_eq!(platform, "knl")
            }
            other => panic!("expected UnsupportedBatchPlatform, got {other:?}"),
        }
        let triangle = Runner::new(Platform::cpu_parallel(), Algorithm::mps())
            .workload(WorkloadKind::Triangle);
        assert!(matches!(
            BatchSession::new(triangle, pg),
            Err(PlanError::UnsupportedWorkload { .. })
        ));
    }
}
