//! The planning step of a run: every decision that can be taken *before*
//! touching edge data, resolved into an explicit, inspectable value.
//!
//! [`Runner::plan`](crate::Runner::plan) produces a [`Plan`] from the
//! platform × algorithm configuration and the target [`PreparedGraph`]:
//!
//! * the reordering decision (degree-descending preprocessing on/off);
//! * kernel selection — the `RfChoice` is resolved against `|V|` into a
//!   concrete [`CpuKernel`], and configuration the type system cannot check
//!   (the RF ratio) is validated here with a descriptive [`PlanError`]
//!   instead of a panic deep inside a worker task;
//! * partitioning — the parallel task split, when the platform has one;
//! * any kernel substitution a platform forces (the GPU has no plain-merge
//!   baseline: **M** runs as MPS with an infinite skew threshold), recorded
//!   in the plan and surfaced in the final report instead of being applied
//!   silently.

use cnc_cpu::{CpuKernel, ParConfig};
use cnc_graph::PreparedGraph;
use cnc_intersect::RfRatioError;
use cnc_workload::{WorkloadError, WorkloadKind};

use crate::runner::{Algorithm, Platform, Runner};

/// Why a run cannot be planned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The BMP range-filter ratio is invalid (zero / one / not a power of
    /// two).
    InvalidRfRatio(RfRatioError),
    /// The workload configuration is invalid (clique size out of range).
    InvalidWorkload(WorkloadError),
    /// The platform cannot execute the requested workload (only the real
    /// CPU backends run non-CNC workloads).
    UnsupportedWorkload {
        /// Label of the requested workload.
        workload: String,
        /// Label of the platform that cannot run it.
        platform: String,
    },
    /// Point-query batch sessions execute on the real CPU backends only
    /// (the modeled platforms have no point-query entry).
    UnsupportedBatchPlatform {
        /// Label of the platform that cannot serve batches.
        platform: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InvalidRfRatio(e) => write!(f, "invalid BMP range-filter config: {e}"),
            PlanError::InvalidWorkload(e) => write!(f, "invalid workload config: {e}"),
            PlanError::UnsupportedWorkload { workload, platform } => write!(
                f,
                "workload {workload} is not supported on platform {platform} \
                 (non-CNC workloads run on the real CPU backends only)"
            ),
            PlanError::UnsupportedBatchPlatform { platform } => write!(
                f,
                "point-query batches are not supported on platform {platform} \
                 (batch sessions run on the real CPU backends only)"
            ),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::InvalidRfRatio(e) => Some(e),
            PlanError::InvalidWorkload(e) => Some(e),
            PlanError::UnsupportedWorkload { .. } | PlanError::UnsupportedBatchPlatform { .. } => {
                None
            }
        }
    }
}

impl From<RfRatioError> for PlanError {
    fn from(e: RfRatioError) -> Self {
        PlanError::InvalidRfRatio(e)
    }
}

impl From<WorkloadError> for PlanError {
    fn from(e: WorkloadError) -> Self {
        PlanError::InvalidWorkload(e)
    }
}

/// A kernel substituted for the requested one by a platform that cannot run
/// the request natively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSubstitution {
    /// Paper-style label of what the caller asked for.
    pub requested: String,
    /// Description of what actually runs.
    pub effective: String,
    /// Why the platform substituted.
    pub reason: &'static str,
}

/// The resolved decisions of a run, fixed before any counting happens.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Degree-descending reorder before executing (counts are always
    /// remapped back to the input graph's offsets).
    pub reorder: bool,
    /// The counting workload this run executes (CNC by default).
    pub workload: WorkloadKind,
    /// The algorithm as requested.
    pub algorithm: Algorithm,
    /// The CPU-side kernel dispatch with the range-filter choice resolved
    /// against this graph's `|V|` — validated, ready to execute.
    pub cpu_kernel: CpuKernel,
    /// The parallel task split, for platforms that partition.
    pub partitioning: Option<ParConfig>,
    /// A platform-forced kernel substitution, if any.
    pub substitution: Option<KernelSubstitution>,
}

impl Runner {
    /// Resolve this configuration against a prepared graph into an
    /// executable [`Plan`], rejecting invalid kernel configuration with a
    /// descriptive error. Planning reads only the preparation's metadata
    /// (`|V|` for the range-filter ratio) — no edge data is touched.
    pub fn plan(&self, prepared: &PreparedGraph) -> Result<Plan, PlanError> {
        let algorithm = self.algorithm();
        let cpu_kernel = match &algorithm {
            Algorithm::MergeBaseline => CpuKernel::Merge,
            Algorithm::Mps(cfg) => CpuKernel::Mps(*cfg),
            Algorithm::Bmp(rf) => CpuKernel::Bmp(rf.mode(prepared.graph().num_vertices())),
        };
        cpu_kernel.validate()?;
        let workload = self.workload_kind();
        workload.validate()?;
        let cpu_platform = matches!(
            self.platform(),
            Platform::CpuSequential | Platform::CpuParallel(_)
        );
        if workload != WorkloadKind::Cnc && !cpu_platform {
            return Err(PlanError::UnsupportedWorkload {
                workload: workload.label(),
                platform: self.backend().label(),
            });
        }
        let substitution = match (self.platform(), &algorithm) {
            (Platform::Gpu { .. }, Algorithm::MergeBaseline) => Some(KernelSubstitution {
                requested: algorithm.label().to_string(),
                effective: format!("MPS(skew_threshold={})", u32::MAX),
                reason: "the GPU simulator has no plain-merge baseline; \
                         MKernel with an infinite skew threshold is M",
            }),
            _ => None,
        };
        let partitioning = match self.platform() {
            Platform::CpuParallel(cfg) => Some(*cfg),
            _ => None,
        };
        Ok(Plan {
            reorder: self.reorder_enabled(),
            workload,
            algorithm,
            cpu_kernel,
            partitioning,
            substitution,
        })
    }
}
