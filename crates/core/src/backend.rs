//! The execute step of a run: one [`Backend`] per processor.
//!
//! A backend takes a validated [`Plan`] and a [`PreparedGraph`] and
//! produces counts plus whatever timing/work evidence its platform has —
//! measured wall clock for the real CPU, modeled seconds and exact
//! [`WorkCounts`] for the simulated processors. Backends never preprocess:
//! the preparation layer already built the CSR and (when the policy asked
//! for it) the degree-descending relabel, so
//! [`PreparedGraph::execution_graph`] just *selects* which of the two CSRs
//! to run on. The four implementations mirror the paper's processor
//! line-up:
//!
//! * [`CpuSeqBackend`] — the real host CPU, sequential;
//! * [`CpuParBackend`] — the real host CPU through the rayon skeleton;
//! * [`ModeledBackend`] — the modeled CPU server and KNL (one backend,
//!   two machine specs);
//! * [`GpuSimBackend`] — the simulated GPU.
//!
//! All CPU-side execution (including the modeled processors' functional
//! runs) goes through `cnc_cpu::CpuKernel`, i.e. the one generic
//! `EdgeRangeDriver` loop.

use cnc_cpu::{CpuKernel, ParConfig};
use cnc_gpu::{GpuAlgo, GpuRunConfig, GpuRunner};
use cnc_graph::PreparedGraph;
use cnc_intersect::{CountingMeter, NullMeter, WorkCounts};
use cnc_knl::{counts_and_work_of, profile_from_work, ModeledAlgo, ModeledProcessor};
use cnc_machine::MemMode;
use cnc_obs::ObsContext;
use cnc_workload::{WorkloadKind, WorkloadOutput};

use crate::plan::Plan;
use crate::runner::{Algorithm, RfChoice, RunDetail};

/// What a backend produced: the workload's output plus platform-specific
/// evidence.
#[derive(Debug, Clone)]
pub struct Execution {
    /// The type-erased workload result (per-edge counts for CNC, in the
    /// offsets of the executed graph).
    pub output: WorkloadOutput,
    /// Modeled elapsed seconds (modeled platforms only).
    pub modeled_seconds: Option<f64>,
    /// Exact work tallies, when the platform collects them.
    pub work: Option<WorkCounts>,
    /// Platform-specific report detail.
    pub detail: RunDetail,
}

/// A processor that can execute a planned run.
pub trait Backend {
    /// Short platform label for reports (`cpu-seq`, `knl`, …).
    fn label(&self) -> String;

    /// Execute `plan` on a prepared graph. Counts are in the offsets of
    /// [`PreparedGraph::execution_graph`] for the plan's reorder flag; the
    /// caller handles remapping back to original ids.
    fn execute(&self, prepared: &PreparedGraph, plan: &Plan) -> Execution;
}

/// The real host CPU, sequential.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuSeqBackend;

impl Backend for CpuSeqBackend {
    fn label(&self) -> String {
        "cpu-seq".into()
    }

    fn execute(&self, prepared: &PreparedGraph, plan: &Plan) -> Execution {
        let g = prepared.execution_graph(plan.reorder);
        // Observed runs meter (the metered specialization provably returns
        // identical counts) so the registry carries exact kernel tallies;
        // plain runs keep the zero-overhead NullMeter path.
        let (output, work) = match ObsContext::current() {
            Some(ctx) => {
                let mut meter = CountingMeter::new();
                let output = {
                    // Match the parallel skeleton's span tree:
                    // execute → workload → kernel.
                    let _w = ctx.span("workload");
                    let _s = ctx.span("kernel");
                    plan.cpu_kernel.run_seq_kind(g, plan.workload, &mut meter)
                };
                meter.counts.record_to(&*ctx);
                (output, Some(meter.counts))
            }
            None => (
                plan.cpu_kernel
                    .run_seq_kind(g, plan.workload, &mut NullMeter),
                None,
            ),
        };
        Execution {
            output,
            modeled_seconds: None,
            work,
            detail: RunDetail::Measured,
        }
    }
}

/// The real host CPU through the rayon Algorithm 3 skeleton.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuParBackend {
    /// Task size and thread count.
    pub cfg: ParConfig,
}

impl Backend for CpuParBackend {
    fn label(&self) -> String {
        "cpu-par".into()
    }

    fn execute(&self, prepared: &PreparedGraph, plan: &Plan) -> Execution {
        let g = prepared.execution_graph(plan.reorder);
        let cfg = plan.partitioning.unwrap_or(self.cfg);
        // Observed runs take the metered parallel path (identical counts by
        // construction — every driver mode runs the same `run_range` loop)
        // and record the merged per-task tallies. The workload and kernel
        // spans open inside the parallel skeleton itself.
        let (output, work) = match ObsContext::current() {
            Some(ctx) => {
                let (output, work) = plan.cpu_kernel.run_par_metered_kind(g, &cfg, plan.workload);
                work.record_to(&*ctx);
                (output, Some(work))
            }
            None => (plan.cpu_kernel.run_par_kind(g, &cfg, plan.workload), None),
        };
        Execution {
            output,
            modeled_seconds: None,
            work,
            detail: RunDetail::Measured,
        }
    }
}

/// A modeled shared-memory processor (the paper's CPU server or KNL):
/// exact counts from the instrumented unified driver, elapsed time from the
/// machine model.
#[derive(Debug, Clone)]
pub struct ModeledBackend {
    /// Short label (`cpu-model` / `knl`).
    pub name: &'static str,
    /// The machine model (possibly capacity-scaled).
    pub processor: ModeledProcessor,
    /// Modeled thread count.
    pub threads: usize,
    /// Modeled memory mode.
    pub mode: MemMode,
}

/// The modeled-processor algorithm equivalent to a planned CPU kernel
/// (the inverse of `cnc_knl::cpu_kernel_of`).
pub fn modeled_algo_of(kernel: &CpuKernel) -> ModeledAlgo {
    match kernel {
        CpuKernel::Merge => ModeledAlgo::MergeBaseline,
        CpuKernel::Mps(cfg) => ModeledAlgo::Mps {
            simd: cfg.simd,
            threshold: cfg.skew_threshold,
        },
        CpuKernel::Bmp(mode) => ModeledAlgo::Bmp { mode: *mode },
    }
}

impl Backend for ModeledBackend {
    fn label(&self) -> String {
        self.name.into()
    }

    fn execute(&self, prepared: &PreparedGraph, plan: &Plan) -> Execution {
        debug_assert_eq!(
            plan.workload,
            WorkloadKind::Cnc,
            "plan() rejects non-CNC workloads on modeled platforms"
        );
        let g = prepared.execution_graph(plan.reorder);
        let algo = modeled_algo_of(&plan.cpu_kernel);
        let (counts, work) = counts_and_work_of(g, &algo);
        let profile = profile_from_work(g, &algo, &work);
        let report = self
            .processor
            .time_profile(&profile, self.threads, self.mode);
        Execution {
            output: WorkloadOutput::EdgeCounts(counts),
            modeled_seconds: Some(report.seconds),
            work: Some(work),
            detail: RunDetail::Modeled(report),
        }
    }
}

/// The simulated GPU.
#[derive(Debug, Clone)]
pub struct GpuSimBackend {
    /// Kernel launch and pass configuration.
    pub config: GpuRunConfig,
    /// Capacity-scaling factor (see `Dataset::capacity_scale`).
    pub capacity_scale: f64,
}

impl Backend for GpuSimBackend {
    fn label(&self) -> String {
        "gpu-sim".into()
    }

    fn execute(&self, prepared: &PreparedGraph, plan: &Plan) -> Execution {
        debug_assert_eq!(
            plan.workload,
            WorkloadKind::Cnc,
            "plan() rejects non-CNC workloads on the GPU simulator"
        );
        let g = prepared.execution_graph(plan.reorder);
        let gpu = GpuRunner::titan_xp_for(self.capacity_scale);
        let algo = match &plan.algorithm {
            Algorithm::MergeBaseline | Algorithm::Mps(_) => GpuAlgo::Mps,
            Algorithm::Bmp(rf) => GpuAlgo::Bmp {
                rf: !matches!(rf, RfChoice::Off),
            },
        };
        let mut cfg = self.config;
        if plan.substitution.is_some() {
            // The planned M → MPS(threshold = ∞) substitution: MKernel
            // never takes the pivot-skip path, which is exactly M.
            cfg.launch.skew_threshold = u32::MAX;
        }
        let run = gpu.run(g, algo, &cfg);
        Execution {
            output: WorkloadOutput::EdgeCounts(run.counts),
            modeled_seconds: Some(run.report.total_seconds),
            work: None,
            detail: RunDetail::Gpu(Box::new(run.report)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_intersect::{MpsConfig, SimdLevel};

    #[test]
    fn modeled_algo_round_trips_cpu_kernel() {
        for kernel in [
            CpuKernel::Merge,
            CpuKernel::Mps(MpsConfig {
                skew_threshold: 7,
                simd: SimdLevel::Avx512,
            }),
            CpuKernel::Bmp(cnc_cpu::BmpMode::Plain),
            CpuKernel::Bmp(cnc_cpu::BmpMode::rf_default()),
        ] {
            assert_eq!(cnc_knl::cpu_kernel_of(&modeled_algo_of(&kernel)), kernel);
        }
    }
}
