//! Translating count arrays across graph relabelings.
//!
//! BMP's complexity bound requires running on a degree-descending-relabeled
//! graph (Section 2.1), but callers want counts indexed by *their* graph's
//! edge offsets. This module maps a count array computed on the relabeled
//! graph back to the original CSR's offsets.

use cnc_graph::{reorder::Reordered, CsrGraph};
use rayon::prelude::*;

/// Translate counts computed on `reordered.graph` back to edge offsets of
/// the original graph `g`.
///
/// For every original edge slot `e(u, v)` the count is looked up at the
/// relabeled slot `e(φ(u), φ(v))` — an `O(log d)` binary search per edge,
/// parallelized over edge chunks.
pub fn counts_to_original(g: &CsrGraph, reordered: &Reordered, counts: &[u32]) -> Vec<u32> {
    assert_eq!(counts.len(), g.num_directed_edges());
    let dst = g.dst();
    (0..g.num_directed_edges())
        .into_par_iter()
        .map(|eid| {
            let mut hint = 0u32;
            let u = g.find_src(eid, &mut hint);
            let v = dst[eid];
            let eid_new = reordered
                .graph
                .edge_offset(reordered.to_new(u), reordered.to_new(v))
                .expect("relabeled graph lost an edge");
            counts[eid_new]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_counts;
    use cnc_graph::{generators, reorder};

    #[test]
    fn remapped_counts_match_direct_reference() {
        let g = CsrGraph::from_edge_list(&generators::chung_lu(200, 9.0, 2.2, 11));
        let r = reorder::degree_descending(&g);
        // Counts computed in relabeled space...
        let relabeled_counts = reference_counts(&r.graph);
        // ...translated back...
        let got = counts_to_original(&g, &r, &relabeled_counts);
        // ...must equal counts computed directly on the original graph
        // (common neighbor counts are label-invariant).
        assert_eq!(got, reference_counts(&g));
    }

    #[test]
    fn identity_relabel_is_identity_map() {
        // A graph already in degree-descending order relabels to itself.
        let g = CsrGraph::from_edge_list(&generators::star(10));
        let r = reorder::degree_descending(&g);
        let counts: Vec<u32> = (0..g.num_directed_edges() as u32).collect();
        assert_eq!(counts_to_original(&g, &r, &counts), counts);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edge_list(&cnc_graph::EdgeList::new(0));
        let r = reorder::degree_descending(&g);
        assert!(counts_to_original(&g, &r, &[]).is_empty());
    }
}
