//! `cnc` — command-line all-edge common neighbor counting.
//!
//! ```text
//! cnc count  GRAPH [--algo mps|bmp|bmp-rf|m] [--platform cpu|cpu-seq|knl|gpu]
//!            [--out FILE] [--stats]
//! cnc stats  GRAPH
//! cnc scan   GRAPH [--eps 0.6] [--mu 3]
//! cnc truss  GRAPH
//! cnc cache  [ls|gc|clear] [--dir D] [--max-bytes N]
//! ```
//!
//! `GRAPH` is a SNAP-style edge-list text file (`u v` per line, `#`
//! comments) or a binary CSR written by `cnc-graph::io::write_csr`
//! (detected by magic). `--out` writes the per-edge counts as
//! `u v count` lines (canonical `u < v` edges once each).
//!
//! `cnc cache` manages the on-disk prepared-graph cache (default
//! directory: `$CNC_CACHE_DIR` or `results/cache`): `ls` lists entries
//! most-recently-used first, `gc --max-bytes N` evicts least-recently-used
//! files down to the byte budget, `clear` removes everything evictable.
//! Files held by live readers are never removed.

use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use cnc_core::{scan, truss_decomposition, Algorithm, CncView, Platform, PreparedGraph, Runner};
use cnc_graph::prepare;
use cnc_graph::stats::{skew_percentage, GraphStats};
use cnc_graph::{io, CsrGraph};

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if bytes.starts_with(b"CNCCSR01") {
        io::read_csr(bytes.as_slice()).map_err(|e| format!("bad binary CSR {path}: {e}"))
    } else {
        let el = io::read_edge_list(bytes.as_slice())
            .map_err(|e| format!("bad edge list {path}: {e}"))?;
        Ok(CsrGraph::from_edge_list(&el))
    }
}

fn parse_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("cnc: {flag} needs a value");
        std::process::exit(2);
    }
    args.remove(pos);
    Some(args.remove(pos))
}

fn parse_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn print_stats(g: &CsrGraph) {
    let s = GraphStats::of(g);
    println!("|V|            {}", s.num_vertices);
    println!("|E| (und.)     {}", g.num_undirected_edges());
    println!("avg degree     {:.2}", s.avg_degree);
    println!("max degree     {}", s.max_degree);
    println!("skewed (>50x)  {:.1}%", skew_percentage(g, 50));
    println!("CSR bytes      {}", g.csr_bytes());
}

/// `cnc cache [ls|gc|clear]` — inspect and trim the prepared-graph cache.
fn run_cache(mut args: Vec<String>) -> Result<(), String> {
    let dir = parse_flag(&mut args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(prepare::default_cache_dir);
    let max_bytes = parse_flag(&mut args, "--max-bytes")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|e| format!("bad --max-bytes: {e}"))
        })
        .transpose()?;
    let report = |verb: &str, out: prepare::GcOutcome| {
        let locked = if out.skipped_locked > 0 {
            format!(", {} in use (kept)", out.skipped_locked)
        } else {
            String::new()
        };
        println!(
            "{verb} {} files ({} bytes); kept {} files ({} bytes){locked}",
            out.evicted, out.evicted_bytes, out.kept, out.kept_bytes
        );
    };
    match args.first().map(String::as_str).unwrap_or("ls") {
        "ls" => {
            // A missing directory is just an empty cache.
            let entries = prepare::cache_entries(&dir).unwrap_or_default();
            let total: u64 = entries.iter().map(|e| e.bytes).sum();
            for e in &entries {
                println!("{:>12}  {}", e.bytes, e.path.display());
            }
            println!(
                "{total:>12}  total: {} files in {}",
                entries.len(),
                dir.display()
            );
            Ok(())
        }
        "gc" => {
            let cap = max_bytes.ok_or_else(|| "cache gc needs --max-bytes N".to_string())?;
            let out = prepare::cache_gc(&dir, cap)
                .map_err(|e| format!("cannot gc {}: {e}", dir.display()))?;
            report("evicted", out);
            Ok(())
        }
        "clear" => {
            let out = prepare::cache_clear(&dir)
                .map_err(|e| format!("cannot clear {}: {e}", dir.display()))?;
            report("removed", out);
            Ok(())
        }
        other => Err(format!("unknown cache action {other:?}")),
    }
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: cnc <count|stats|scan|truss> GRAPH [--algo A] [--platform P] [--out F] [--eps E] [--mu M] [--stats]\n       cnc cache [ls|gc|clear] [--dir D] [--max-bytes N]"
        );
        return Ok(());
    }
    let command = args.remove(0);
    if command == "cache" {
        return run_cache(args);
    }
    let algo = match parse_flag(&mut args, "--algo").as_deref() {
        None | Some("bmp-rf") => Algorithm::bmp_rf(),
        Some("bmp") => Algorithm::bmp(),
        Some("mps") => Algorithm::mps(),
        Some("m") => Algorithm::MergeBaseline,
        Some(other) => return Err(format!("unknown --algo {other:?}")),
    };
    let out_path = parse_flag(&mut args, "--out");
    let eps: f64 = parse_flag(&mut args, "--eps")
        .map(|s| s.parse().map_err(|e| format!("bad --eps: {e}")))
        .transpose()?
        .unwrap_or(0.6);
    let mu: usize = parse_flag(&mut args, "--mu")
        .map(|s| s.parse().map_err(|e| format!("bad --mu: {e}")))
        .transpose()?
        .unwrap_or(3);
    let want_stats = parse_switch(&mut args, "--stats");
    let platform_name = parse_flag(&mut args, "--platform").unwrap_or_else(|| "cpu".into());
    let graph_path = args
        .first()
        .ok_or_else(|| "missing GRAPH argument".to_string())?;
    let g = load_graph(graph_path)?;
    // Modeled platforms need a capacity scale; for ad-hoc files use the
    // graph's ratio to the paper's twitter dataset as a sensible default.
    let scale = (g.num_undirected_edges() as f64 / 684_500_375.0).min(1.0);
    let platform = match platform_name.as_str() {
        "cpu" => Platform::cpu_parallel(),
        "cpu-seq" => Platform::CpuSequential,
        "knl" => Platform::knl_flat(scale),
        "gpu" => Platform::gpu(scale),
        other => return Err(format!("unknown --platform {other:?}")),
    };

    // Prepare once (CSR + reorder tables + statistics); every subcommand
    // below shares the result instead of re-deriving it per run.
    let runner = Runner::new(platform, algo);
    let prepared = PreparedGraph::from_csr(g, runner.reorder_policy());
    let g = prepared.graph();

    match command.as_str() {
        "stats" => {
            print_stats(g);
            Ok(())
        }
        "count" => {
            let result = runner.run_prepared(&prepared);
            let view = result.view(g);
            eprintln!(
                "counted {} edge slots in {:.1} ms wall{}",
                result.counts.len(),
                result.wall_seconds * 1e3,
                result
                    .modeled_seconds
                    .map(|s| format!(" ({:.3} ms modeled)", s * 1e3))
                    .unwrap_or_default()
            );
            eprintln!("triangles: {}", view.triangle_count());
            if want_stats {
                print_stats(g);
            }
            if let Some(path) = out_path {
                let f = std::fs::File::create(&path)
                    .map_err(|e| format!("cannot create {path}: {e}"))?;
                if path.ends_with(".bin") {
                    // Binary counts aligned to the CSR's directed edge
                    // slots (load with cnc_graph::io::read_counts).
                    cnc_graph::io::write_counts(&result.counts, f).map_err(|e| e.to_string())?;
                } else {
                    let mut w = BufWriter::new(f);
                    for (eid, u, v) in g.iter_edges() {
                        if u < v {
                            writeln!(w, "{u}\t{v}\t{}", result.counts[eid])
                                .map_err(|e| e.to_string())?;
                        }
                    }
                    w.flush().map_err(|e| e.to_string())?;
                }
                eprintln!("wrote {path}");
            }
            Ok(())
        }
        "scan" => {
            let result = runner.run_prepared(&prepared);
            let view = result.view(g);
            let r = scan(&view, eps, mu);
            println!(
                "SCAN(eps={eps}, mu={mu}): {} clusters; cores {}, borders {}, hubs {}, outliers {}",
                r.num_clusters,
                r.count_role(cnc_core::Role::Core),
                r.count_role(cnc_core::Role::Border),
                r.count_role(cnc_core::Role::Hub),
                r.count_role(cnc_core::Role::Outlier),
            );
            let mut sizes: Vec<usize> = (0..r.num_clusters as i32)
                .map(|c| r.members(c).len())
                .collect();
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            println!("largest clusters: {:?}", &sizes[..sizes.len().min(10)]);
            Ok(())
        }
        "truss" => {
            let result = runner.run_prepared(&prepared);
            let r = truss_decomposition(g, &result.counts);
            println!("max trussness: {}", r.max_k);
            for k in 3..=r.max_k {
                let edges = r.truss_edge_count(g, k);
                if edges > 0 {
                    println!("  {k}-truss: {edges} edges");
                }
            }
            // Also report the densest layer's clustering quality.
            let view = CncView::new(g, &result.counts);
            println!(
                "global clustering coefficient: {:.4}",
                view.global_clustering_coefficient()
            );
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cnc: {e}");
            ExitCode::FAILURE
        }
    }
}
