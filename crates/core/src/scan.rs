//! SCAN structural graph clustering (Xu et al., KDD 2007) on top of the
//! all-edge common neighbor counts.
//!
//! This is the application the paper's motivation and citations
//! ([8, 9, 21, 25–27]) compute the counts *for*: pSCAN, SCAN++, ppSCAN and
//! friends all reduce to (1) the per-edge structural similarities — which
//! are a direct function of `cnt[e(u,v)]` — and (2) a clustering sweep over
//! them. With the counts in hand, the sweep is linear in `|E|`.
//!
//! Definitions (with closed neighborhoods, as in the original paper):
//!
//! * structural similarity `σ(u,v) = (cnt[e(u,v)] + 2) / √((d_u+1)(d_v+1))`;
//! * `(ε, μ)`-core: a vertex with ≥ μ vertices in its closed ε-neighborhood
//!   (itself plus neighbors with σ ≥ ε);
//! * clusters: connected components of cores under σ ≥ ε edges, plus every
//!   non-core vertex ε-reachable from a core (a *border*);
//! * leftover vertices are **hubs** if they neighbor two or more different
//!   clusters, **outliers** otherwise.

use cnc_graph::CsrGraph;

use crate::analytics::CncView;

/// A vertex's role in the SCAN decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// An (ε, μ)-core inside a cluster.
    Core,
    /// A non-core member attached to a cluster.
    Border,
    /// Unclustered, bridging ≥ 2 clusters.
    Hub,
    /// Unclustered, bridging < 2 clusters.
    Outlier,
}

/// The result of a SCAN run.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Cluster id per vertex; `-1` for hubs/outliers.
    pub cluster: Vec<i32>,
    /// Role per vertex.
    pub role: Vec<Role>,
    /// Number of clusters found.
    pub num_clusters: usize,
    /// The parameters used.
    pub eps: f64,
    /// The parameters used.
    pub mu: usize,
}

impl ScanResult {
    /// Vertices of one cluster.
    pub fn members(&self, cluster_id: i32) -> Vec<u32> {
        self.cluster
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == cluster_id)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// Count of vertices with a given role.
    pub fn count_role(&self, role: Role) -> usize {
        self.role.iter().filter(|&&r| r == role).count()
    }
}

/// Why a SCAN parameterization was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScanError {
    /// `eps` outside `(0, 1]`.
    EpsOutOfRange(f64),
    /// `mu < 2` (the core size counts the vertex itself).
    MuTooSmall(usize),
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::EpsOutOfRange(eps) => {
                write!(f, "eps must be in (0, 1], got {eps}")
            }
            ScanError::MuTooSmall(mu) => write!(f, "mu must be at least 2, got {mu}"),
        }
    }
}

impl std::error::Error for ScanError {}

fn check_scan_params(eps: f64, mu: usize) -> Result<(), ScanError> {
    if !(0.0..=1.0).contains(&eps) {
        return Err(ScanError::EpsOutOfRange(eps));
    }
    if mu < 2 {
        return Err(ScanError::MuTooSmall(mu));
    }
    Ok(())
}

/// Run SCAN over a graph with precomputed counts.
///
/// `eps ∈ (0, 1]` is the similarity threshold, `mu ≥ 2` the core size
/// (counting the vertex itself, per the original definition).
///
/// # Panics
/// On out-of-range `eps`/`mu` — see [`try_scan`] for the non-panicking
/// form.
pub fn scan(view: &CncView<'_>, eps: f64, mu: usize) -> ScanResult {
    try_scan(view, eps, mu).unwrap_or_else(|e| panic!("{e}"))
}

/// [`scan`] with parameter validation as a typed error instead of a panic.
pub fn try_scan(view: &CncView<'_>, eps: f64, mu: usize) -> Result<ScanResult, ScanError> {
    check_scan_params(eps, mu)?;
    Ok(scan_impl(view, eps, mu))
}

fn scan_impl(view: &CncView<'_>, eps: f64, mu: usize) -> ScanResult {
    let g: &CsrGraph = view.graph();
    let n = g.num_vertices();

    // ε-neighbor adjacency is reused several times: precompute the strong
    // flag per directed edge slot.
    let strong: Vec<bool> = (0..g.num_directed_edges())
        .map(|eid| view.structural_similarity(eid) >= eps)
        .collect();
    let strong_neighbors = |u: u32| {
        g.offset_range(u)
            .filter(|&eid| strong[eid])
            .map(|eid| g.dst()[eid])
    };

    let is_core: Vec<bool> = (0..n as u32)
        .map(|u| strong_neighbors(u).count() + 1 >= mu)
        .collect();

    // Clusters = components of cores over strong edges; borders attach.
    let mut cluster = vec![-1i32; n];
    let mut num_clusters = 0usize;
    for seed in 0..n as u32 {
        if !is_core[seed as usize] || cluster[seed as usize] != -1 {
            continue;
        }
        let id = num_clusters as i32;
        num_clusters += 1;
        cluster[seed as usize] = id;
        let mut stack = vec![seed];
        while let Some(u) = stack.pop() {
            debug_assert!(is_core[u as usize]);
            for v in strong_neighbors(u) {
                if cluster[v as usize] == -1 {
                    cluster[v as usize] = id;
                    if is_core[v as usize] {
                        stack.push(v);
                    }
                } else if is_core[v as usize] && cluster[v as usize] != id {
                    // Cannot happen: strong edges between cores merge
                    // components in one DFS.
                    debug_assert_eq!(cluster[v as usize], id);
                }
            }
        }
    }

    // Roles: hubs bridge ≥ 2 distinct clusters among their (plain)
    // neighbors, outliers fewer.
    let role: Vec<Role> = (0..n as u32)
        .map(|u| {
            if cluster[u as usize] != -1 {
                if is_core[u as usize] {
                    Role::Core
                } else {
                    Role::Border
                }
            } else {
                let mut seen: Option<i32> = None;
                let mut bridges = false;
                for &v in g.neighbors(u) {
                    let c = cluster[v as usize];
                    if c == -1 {
                        continue;
                    }
                    match seen {
                        None => seen = Some(c),
                        Some(s) if s != c => {
                            bridges = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if bridges {
                    Role::Hub
                } else {
                    Role::Outlier
                }
            }
        })
        .collect();

    ScanResult {
        cluster,
        role,
        num_clusters,
        eps,
        mu,
    }
}

/// A sequential union-find with path halving (the cluster-merging core of
/// the parallel SCAN below).
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Union by smaller root id keeps cluster numbering deterministic.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi as usize] = lo;
        }
    }
}

/// Parallel SCAN: identical output to [`scan`], with the two embarrassingly
/// parallel phases (per-edge similarity thresholding, per-vertex core
/// detection) on rayon and the cluster merge as a union-find sweep — the
/// structure of the pruning-based parallel SCAN family the paper's
/// citation \[9\] describes (minus the pruning, which the precomputed
/// counts make unnecessary).
///
/// # Panics
/// On out-of-range `eps`/`mu` — see [`try_scan_parallel`] for the
/// non-panicking form.
pub fn scan_parallel(view: &CncView<'_>, eps: f64, mu: usize) -> ScanResult {
    try_scan_parallel(view, eps, mu).unwrap_or_else(|e| panic!("{e}"))
}

/// [`scan_parallel`] with parameter validation as a typed error instead of
/// a panic.
pub fn try_scan_parallel(view: &CncView<'_>, eps: f64, mu: usize) -> Result<ScanResult, ScanError> {
    check_scan_params(eps, mu)?;
    Ok(scan_parallel_impl(view, eps, mu))
}

fn scan_parallel_impl(view: &CncView<'_>, eps: f64, mu: usize) -> ScanResult {
    use rayon::prelude::*;
    let g: &CsrGraph = view.graph();
    let n = g.num_vertices();

    // Phase 1 (parallel): strong-edge flags.
    let strong: Vec<bool> = (0..g.num_directed_edges())
        .into_par_iter()
        .map(|eid| view.structural_similarity(eid) >= eps)
        .collect();
    // Phase 2 (parallel): cores.
    let is_core: Vec<bool> = (0..n as u32)
        .into_par_iter()
        .map(|u| {
            let strong_deg = g.offset_range(u).filter(|&eid| strong[eid]).count();
            strong_deg + 1 >= mu
        })
        .collect();
    // Phase 3: union cores over strong core-core edges.
    let mut uf = UnionFind::new(n);
    for u in 0..n as u32 {
        if !is_core[u as usize] {
            continue;
        }
        for eid in g.offset_range(u) {
            let v = g.dst()[eid];
            if strong[eid] && v > u && is_core[v as usize] {
                uf.union(u, v);
            }
        }
    }
    // Phase 4: number clusters by root order (matching the sequential DFS's
    // seed order: the smallest core id of a component is its seed) and
    // attach borders.
    let mut cluster = vec![-1i32; n];
    let mut num_clusters = 0usize;
    let mut root_to_id: std::collections::HashMap<u32, i32> = std::collections::HashMap::new();
    for u in 0..n as u32 {
        if is_core[u as usize] {
            let root = uf.find(u);
            let id = *root_to_id.entry(root).or_insert_with(|| {
                let id = num_clusters as i32;
                num_clusters += 1;
                id
            });
            cluster[u as usize] = id;
        }
    }
    // Borders: non-cores strongly connected to a core take the smallest
    // adjacent core's cluster — identical to the DFS attachment because a
    // non-core reached from several clusters is taken by the first
    // (smallest-seed) cluster that reaches it in seed order.
    let border_of: Vec<i32> = (0..n as u32)
        .into_par_iter()
        .map(|u| {
            if is_core[u as usize] {
                return cluster[u as usize];
            }
            g.offset_range(u)
                .filter(|&eid| strong[eid] && is_core[g.dst()[eid] as usize])
                .map(|eid| cluster[g.dst()[eid] as usize])
                .min()
                .unwrap_or(-1)
        })
        .collect();
    let cluster: Vec<i32> = border_of;

    let role: Vec<Role> = (0..n as u32)
        .into_par_iter()
        .map(|u| {
            if cluster[u as usize] != -1 {
                if is_core[u as usize] {
                    Role::Core
                } else {
                    Role::Border
                }
            } else {
                let mut seen: Option<i32> = None;
                let mut bridges = false;
                for &v in g.neighbors(u) {
                    let c = cluster[v as usize];
                    if c == -1 {
                        continue;
                    }
                    match seen {
                        None => seen = Some(c),
                        Some(s) if s != c => {
                            bridges = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if bridges {
                    Role::Hub
                } else {
                    Role::Outlier
                }
            }
        })
        .collect();

    ScanResult {
        cluster,
        role,
        num_clusters,
        eps,
        mu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_counts;
    use cnc_graph::{generators, CsrGraph, EdgeList};

    fn run_scan(g: &CsrGraph, eps: f64, mu: usize) -> ScanResult {
        let counts = reference_counts(g);
        let view = CncView::new(g, &counts);
        scan(&view, eps, mu)
    }

    #[test]
    fn two_cliques_two_clusters() {
        // Two K5s joined by one bridge edge.
        let g = CsrGraph::from_edge_list(&generators::clique_chain(2, 5));
        let r = run_scan(&g, 0.7, 3);
        assert_eq!(r.num_clusters, 2);
        // Every clique member lands in its clique's cluster.
        for v in 0..5 {
            assert_eq!(r.cluster[v], r.cluster[0]);
        }
        for v in 5..10 {
            assert_eq!(r.cluster[v], r.cluster[5]);
        }
        assert_ne!(r.cluster[0], r.cluster[5]);
        assert!(r.count_role(Role::Core) >= 8);
    }

    #[test]
    fn path_graph_has_no_clusters_at_high_eps() {
        let g = CsrGraph::from_edge_list(&generators::path(20));
        let r = run_scan(&g, 0.95, 3);
        assert_eq!(r.num_clusters, 0);
        assert_eq!(r.count_role(Role::Outlier), 20);
    }

    #[test]
    fn hub_between_two_communities() {
        // Two K4s {0..4} and {5..9} sharing no edge, plus vertex 10
        // connected to one member of each: 10 must be classified a Hub.
        let mut el = EdgeList::new(11);
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    el.push(base + i, base + j);
                }
            }
        }
        el.push(10, 0);
        el.push(10, 5);
        let g = CsrGraph::from_edge_list(&el);
        let r = run_scan(&g, 0.7, 3);
        assert_eq!(r.num_clusters, 2);
        assert_eq!(r.role[10], Role::Hub);
    }

    #[test]
    fn outlier_attached_to_one_community() {
        let mut el = generators::complete(5);
        el.push(0, 5); // degree-1 pendant: weak σ, not a border at high eps
        let g = CsrGraph::from_edge_list(&el);
        let r = run_scan(&g, 0.8, 3);
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.role[5], Role::Outlier);
    }

    #[test]
    fn low_eps_absorbs_borders() {
        let mut el = generators::complete(5);
        el.push(0, 5);
        let g = CsrGraph::from_edge_list(&el);
        // At a permissive threshold the pendant becomes a border member.
        let r = run_scan(&g, 0.3, 3);
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.role[5], Role::Border);
        assert_eq!(r.cluster[5], r.cluster[0]);
    }

    #[test]
    fn members_and_counts_are_consistent() {
        let g = CsrGraph::from_edge_list(&generators::clique_chain(3, 6));
        let r = run_scan(&g, 0.6, 3);
        let total: usize = (0..r.num_clusters as i32).map(|c| r.members(c).len()).sum();
        let clustered = r.cluster.iter().filter(|&&c| c >= 0).count();
        assert_eq!(total, clustered);
        assert_eq!(
            r.count_role(Role::Core) + r.count_role(Role::Border),
            clustered
        );
    }

    #[test]
    #[should_panic(expected = "mu must be at least 2")]
    fn mu_validation() {
        let g = CsrGraph::from_edge_list(&generators::complete(3));
        let _ = run_scan(&g, 0.5, 1);
    }

    #[test]
    fn bad_params_are_typed_errors() {
        let g = CsrGraph::from_edge_list(&generators::complete(3));
        let counts = reference_counts(&g);
        let view = CncView::new(&g, &counts);
        assert_eq!(
            try_scan(&view, 1.5, 3).unwrap_err(),
            ScanError::EpsOutOfRange(1.5)
        );
        assert_eq!(
            try_scan(&view, 0.5, 0).unwrap_err(),
            ScanError::MuTooSmall(0)
        );
        assert_eq!(
            try_scan_parallel(&view, -0.1, 2).unwrap_err(),
            ScanError::EpsOutOfRange(-0.1)
        );
        assert!(try_scan(&view, 0.5, 2).is_ok());
    }

    #[test]
    fn deterministic_cluster_ids() {
        let g = CsrGraph::from_edge_list(&generators::chung_lu(200, 8.0, 2.2, 5));
        let a = run_scan(&g, 0.5, 3);
        let b = run_scan(&g, 0.5, 3);
        assert_eq!(a.cluster, b.cluster);
    }

    #[test]
    fn parallel_scan_equals_sequential() {
        for (el, eps, mu) in [
            (generators::clique_chain(4, 8), 0.6, 3usize),
            (generators::chung_lu(300, 9.0, 2.2, 7), 0.5, 3),
            (generators::hub_web(250, 5.0, 2, 0.4, 2), 0.4, 4),
            (generators::gnm(200, 900, 1), 0.3, 2),
            (generators::path(30), 0.9, 3),
        ] {
            let g = CsrGraph::from_edge_list(&el);
            let counts = reference_counts(&g);
            let view = CncView::new(&g, &counts);
            let seq = scan(&view, eps, mu);
            let par = scan_parallel(&view, eps, mu);
            assert_eq!(seq.num_clusters, par.num_clusters, "eps={eps} mu={mu}");
            assert_eq!(seq.cluster, par.cluster, "eps={eps} mu={mu}");
            assert_eq!(seq.role, par.role, "eps={eps} mu={mu}");
        }
    }
}
