//! # aecnc — All-Edge Common Neighbor Counting on three processors
//!
//! The public API of this reproduction of Che et al., *Accelerating
//! All-Edge Common Neighbor Counting on Three Processors* (ICPP 2019).
//!
//! Given an undirected graph, compute `cnt[e(u,v)] = |N(u) ∩ N(v)|` for
//! every edge, using either of the paper's two algorithm families (**MPS**,
//! **BMP**) on any of its three processors — the real multicore CPU
//! (rayon), the modeled KNL, or the simulated GPU:
//!
//! ```
//! use cnc_core::{Algorithm, Platform, Runner};
//! use cnc_graph::{generators, CsrGraph};
//!
//! let g = CsrGraph::from_edge_list(&generators::clique_chain(4, 8));
//! let result = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf())
//!     .reorder(true)
//!     .run(&g);
//!
//! // Exact counts for every directed edge slot, plus derived analytics.
//! let view = result.view(&g);
//! assert_eq!(view.triangle_count(), 4 * 56); // four K8 cliques
//! ```
//!
//! The building blocks are exposed by the sibling crates:
//! `cnc-graph` (CSR storage, generators, datasets), `cnc-intersect`
//! (set-intersection kernels), `cnc-cpu` (parallel drivers), `cnc-machine`
//! (machine models), `cnc-knl` (modeled KNL), and `cnc-gpu` (GPU
//! simulator).

#![forbid(unsafe_code)]
// Lib code must surface failures as typed errors, not panics: unwrap()
// is allowed in tests only (CI runs clippy with -D warnings).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod analytics;
pub mod backend;
pub mod batch;
pub mod incremental;
pub mod plan;
pub mod remap;
pub mod runner;
pub mod scan;
pub mod truss;
pub mod verify;

pub use analytics::CncView;
pub use backend::{
    modeled_algo_of, Backend, CpuParBackend, CpuSeqBackend, Execution, GpuSimBackend,
    ModeledBackend,
};
pub use batch::{BatchAnswers, BatchSession, EdgeCount};
pub use cnc_graph::{PreparedGraph, ReorderPolicy};
pub use cnc_workload::{WorkloadError, WorkloadKind, WorkloadOutput};
pub use incremental::{IncrementalCnc, IncrementalError};
pub use plan::{KernelSubstitution, Plan, PlanError};
pub use runner::{
    Algorithm, CncResult, Platform, RfChoice, RunDetail, RunOutput, RunStats, Runner,
};
pub use scan::{scan, scan_parallel, try_scan, try_scan_parallel, Role, ScanError, ScanResult};
pub use truss::{truss_decomposition, TrussError, TrussResult};
pub use verify::{reference_counts, verify_counts, VerifyError};
