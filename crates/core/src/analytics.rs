//! Derived analytics over the all-edge counts — the applications the
//! paper's introduction motivates (structural clustering, similarity
//! queries, recommendation).

use cnc_graph::CsrGraph;

/// A borrow of a graph plus its count array with derived-metric accessors.
#[derive(Debug, Clone, Copy)]
pub struct CncView<'a> {
    graph: &'a CsrGraph,
    counts: &'a [u32],
}

impl<'a> CncView<'a> {
    /// Bind counts to their graph. Panics on length mismatch.
    pub fn new(graph: &'a CsrGraph, counts: &'a [u32]) -> Self {
        assert_eq!(
            counts.len(),
            graph.num_directed_edges(),
            "counts must have one entry per directed edge slot"
        );
        Self { graph, counts }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// The raw per-edge-offset counts.
    pub fn counts(&self) -> &[u32] {
        self.counts
    }

    /// The common neighbor count of an adjacent pair, `None` if `(u, v)` is
    /// not an edge.
    pub fn count(&self, u: u32, v: u32) -> Option<u32> {
        self.graph.edge_offset(u, v).map(|eid| self.counts[eid])
    }

    /// Total triangles: `Σ cnt / 6` (each triangle is counted once per
    /// directed edge slot of its three edges — Section 2.2.2).
    pub fn triangle_count(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum::<u64>() / 6
    }

    /// Jaccard similarity of an edge's endpoints:
    /// `|N(u) ∩ N(v)| / |N(u) ∪ N(v)|`.
    pub fn jaccard(&self, eid: usize) -> f64 {
        let (u, v) = self.endpoints(eid);
        let inter = self.counts[eid] as f64;
        let union = (self.graph.degree(u) + self.graph.degree(v)) as f64 - inter;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Cosine similarity of the endpoint neighborhoods:
    /// `|N(u) ∩ N(v)| / sqrt(d_u · d_v)`.
    pub fn cosine(&self, eid: usize) -> f64 {
        let (u, v) = self.endpoints(eid);
        let d = (self.graph.degree(u) as f64 * self.graph.degree(v) as f64).sqrt();
        if d == 0.0 {
            0.0
        } else {
            self.counts[eid] as f64 / d
        }
    }

    /// SCAN structural similarity (Xu et al., the clustering the paper's
    /// citations [8, 9, 27] compute from these counts):
    /// `(cnt + 2) / sqrt((d_u + 1)(d_v + 1))` — the `+`s account for the
    /// closed neighborhoods containing `u` and `v` themselves.
    pub fn structural_similarity(&self, eid: usize) -> f64 {
        let (u, v) = self.endpoints(eid);
        let denom =
            ((self.graph.degree(u) as f64 + 1.0) * (self.graph.degree(v) as f64 + 1.0)).sqrt();
        (self.counts[eid] as f64 + 2.0) / denom
    }

    /// Endpoints of an edge offset.
    pub fn endpoints(&self, eid: usize) -> (u32, u32) {
        let mut hint = 0u32;
        let u = self.graph.find_src(eid, &mut hint);
        (u, self.graph.dst()[eid])
    }

    /// ε-neighborhood of `u` under structural similarity: the neighbors `v`
    /// with `σ(u, v) ≥ eps` — the core primitive of SCAN clustering.
    pub fn eps_neighborhood(&self, u: u32, eps: f64) -> Vec<u32> {
        self.graph
            .offset_range(u)
            .filter(|&eid| self.structural_similarity(eid) >= eps)
            .map(|eid| self.graph.dst()[eid])
            .collect()
    }

    /// Rank a vertex's neighbors-of-neighbors for recommendation: among the
    /// 2-hop candidates, order adjacent pairs by common neighbor count
    /// descending. Returns `(neighbor, count)` pairs for `u`'s edges —
    /// the "customers also bought" primitive of the intro's co-purchasing
    /// scenario.
    pub fn ranked_neighbors(&self, u: u32) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = self
            .graph
            .offset_range(u)
            .map(|eid| (self.graph.dst()[eid], self.counts[eid]))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// The actual common neighbors of an adjacent pair (not just the count),
    /// materialized on demand with the hybrid kernel. `None` if `(u, v)` is
    /// not an edge. Used to *explain* a similarity or recommendation.
    pub fn common_neighbors(&self, u: u32, v: u32) -> Option<Vec<u32>> {
        self.graph.edge_offset(u, v)?;
        let mut out = Vec::new();
        cnc_intersect::mps_collect(
            self.graph.neighbors(u),
            self.graph.neighbors(v),
            50,
            &mut out,
            &mut cnc_intersect::NullMeter,
        );
        Some(out)
    }

    /// Adamic–Adar index of an adjacent pair: `Σ_{w ∈ N(u)∩N(v)} 1/ln(d_w)`
    /// — the classic link-strength score that down-weights common neighbors
    /// that are themselves hubs. `None` if `(u, v)` is not an edge.
    ///
    /// Materializes the common neighbors with the hybrid kernel, so the
    /// cost is `O(min(d_u, d_v))`-ish per query on top of the counts.
    pub fn adamic_adar(&self, u: u32, v: u32) -> Option<f64> {
        let shared = self.common_neighbors(u, v)?;
        Some(
            shared
                .iter()
                .map(|&w| {
                    let d = self.graph.degree(w) as f64;
                    // Degree-1 common neighbors are impossible (w touches
                    // both u and v), so ln(d) ≥ ln 2 > 0.
                    1.0 / d.ln()
                })
                .sum(),
        )
    }

    /// Resource-allocation index: `Σ_{w ∈ N(u)∩N(v)} 1/d_w` — like
    /// Adamic–Adar with a harsher hub penalty. `None` if `(u, v)` is not an
    /// edge.
    pub fn resource_allocation(&self, u: u32, v: u32) -> Option<f64> {
        let shared = self.common_neighbors(u, v)?;
        Some(
            shared
                .iter()
                .map(|&w| 1.0 / self.graph.degree(w) as f64)
                .sum(),
        )
    }

    /// Local clustering coefficient of `u`: the fraction of pairs of `u`'s
    /// neighbors that are themselves connected,
    /// `Σ_{v ∈ N(u)} cnt[e(u,v)] / (d_u (d_u − 1))`.
    pub fn local_clustering_coefficient(&self, u: u32) -> f64 {
        let d = self.graph.degree(u);
        if d < 2 {
            return 0.0;
        }
        let closed: u64 = self
            .graph
            .offset_range(u)
            .map(|eid| self.counts[eid] as u64)
            .sum();
        closed as f64 / (d as f64 * (d as f64 - 1.0))
    }

    /// Global clustering coefficient (transitivity): `3·triangles / #wedges`
    /// where a wedge is an ordered path of length 2.
    pub fn global_clustering_coefficient(&self) -> f64 {
        let wedges: u64 = (0..self.graph.num_vertices() as u32)
            .map(|u| {
                let d = self.graph.degree(u) as u64;
                d.saturating_sub(1) * d / 2
            })
            .sum();
        if wedges == 0 {
            return 0.0;
        }
        3.0 * self.triangle_count() as f64 / wedges as f64
    }

    /// The `k` strongest edges in the whole graph by a similarity function
    /// (each undirected edge reported once, as `(u, v, score)` with
    /// `u < v`).
    pub fn top_k_edges_by(
        &self,
        k: usize,
        score: impl Fn(&Self, usize) -> f64,
    ) -> Vec<(u32, u32, f64)> {
        let mut scored: Vec<(u32, u32, f64)> = Vec::new();
        for (eid, u, v) in self.graph.iter_edges() {
            if u < v {
                scored.push((u, v, score(self, eid)));
            }
        }
        // total_cmp: a NaN-producing score function must not panic the
        // sort (NaN scores order deterministically instead).
        scored.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0).then(a.1.cmp(&b.1))));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_counts;
    use cnc_graph::{generators, CsrGraph, EdgeList};

    fn view_of(g: &CsrGraph) -> (Vec<u32>, &CsrGraph) {
        (reference_counts(g), g)
    }

    #[test]
    fn triangle_count_on_known_graphs() {
        // K4 has 4 triangles; a path has none; clique_chain(3, 5): 3 * C(5,3).
        let k4 = CsrGraph::from_edge_list(&generators::complete(4));
        let (c, g) = view_of(&k4);
        assert_eq!(CncView::new(g, &c).triangle_count(), 4);

        let p = CsrGraph::from_edge_list(&generators::path(10));
        let (c, g) = view_of(&p);
        assert_eq!(CncView::new(g, &c).triangle_count(), 0);

        let cc = CsrGraph::from_edge_list(&generators::clique_chain(3, 5));
        let (c, g) = view_of(&cc);
        assert_eq!(CncView::new(g, &c).triangle_count(), 3 * 10);
    }

    #[test]
    fn similarity_metrics_on_triangle_with_tail() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs([(0, 1), (0, 2), (1, 2), (2, 3)]));
        let c = reference_counts(&g);
        let v = CncView::new(&g, &c);
        let e01 = g.edge_offset(0, 1).unwrap();
        // cnt = 1, d0 = d1 = 2: jaccard 1/3, cosine 1/2.
        assert!((v.jaccard(e01) - 1.0 / 3.0).abs() < 1e-12);
        assert!((v.cosine(e01) - 0.5).abs() < 1e-12);
        // SCAN: (1+2)/sqrt(3*3) = 1.
        assert!((v.structural_similarity(e01) - 1.0).abs() < 1e-12);
        let e23 = g.edge_offset(2, 3).unwrap();
        assert_eq!(v.count(2, 3), Some(0));
        assert!(v.jaccard(e23) < 1e-12);
        assert_eq!(v.count(0, 3), None);
    }

    #[test]
    fn eps_neighborhood_filters_by_similarity() {
        // Clique 0-1-2-3 with a pendant 4 on vertex 0: within the clique
        // similarities are high, the pendant edge is weak.
        let mut el = generators::complete(4);
        el.push(0, 4);
        let g = CsrGraph::from_edge_list(&el);
        let c = reference_counts(&g);
        let v = CncView::new(&g, &c);
        let strong = v.eps_neighborhood(0, 0.7);
        assert!(strong.contains(&1) && strong.contains(&2) && strong.contains(&3));
        assert!(!strong.contains(&4));
        // With eps = 0 everything qualifies.
        assert_eq!(v.eps_neighborhood(0, 0.0).len(), 4);
    }

    #[test]
    fn ranked_neighbors_orders_by_count() {
        // Vertex 0 in a clique-with-pendant: clique edges have 2 common
        // neighbors, the pendant has 0.
        let mut el = generators::complete(4);
        el.push(0, 4);
        let g = CsrGraph::from_edge_list(&el);
        let c = reference_counts(&g);
        let v = CncView::new(&g, &c);
        let ranked = v.ranked_neighbors(0);
        assert_eq!(ranked.len(), 4);
        assert_eq!(ranked.last().unwrap().0, 4, "pendant ranks last");
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    #[should_panic(expected = "one entry per directed edge")]
    fn length_mismatch_panics() {
        let g = CsrGraph::from_edge_list(&generators::path(3));
        let c = vec![0u32; 1];
        let _ = CncView::new(&g, &c);
    }

    #[test]
    fn common_neighbors_explains_counts() {
        let g = CsrGraph::from_edge_list(&generators::complete(6));
        let c = reference_counts(&g);
        let v = CncView::new(&g, &c);
        let shared = v.common_neighbors(0, 1).unwrap();
        assert_eq!(shared, vec![2, 3, 4, 5]);
        assert_eq!(shared.len() as u32, v.count(0, 1).unwrap());
        assert_eq!(v.common_neighbors(0, 99), None);
    }

    #[test]
    fn clustering_coefficients() {
        // K4: every vertex and the whole graph have coefficient 1.
        let g = CsrGraph::from_edge_list(&generators::complete(4));
        let c = reference_counts(&g);
        let v = CncView::new(&g, &c);
        for u in 0..4 {
            assert!((v.local_clustering_coefficient(u) - 1.0).abs() < 1e-12);
        }
        assert!((v.global_clustering_coefficient() - 1.0).abs() < 1e-12);

        // A path has no triangles: all coefficients zero.
        let p = CsrGraph::from_edge_list(&generators::path(10));
        let c = reference_counts(&p);
        let v = CncView::new(&p, &c);
        assert_eq!(v.local_clustering_coefficient(1), 0.0);
        assert_eq!(v.global_clustering_coefficient(), 0.0);
        // Degree-1 endpoints are defined as 0.
        assert_eq!(v.local_clustering_coefficient(0), 0.0);
    }

    #[test]
    fn local_coefficient_on_triangle_with_tail() {
        // Vertex 2 has neighbors {0, 1, 3}; only (0,1) of its three
        // neighbor pairs is connected → coefficient 1/3.
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs([(0, 1), (0, 2), (1, 2), (2, 3)]));
        let c = reference_counts(&g);
        let v = CncView::new(&g, &c);
        assert!((v.local_clustering_coefficient(2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn link_prediction_indices() {
        // Triangle 0-1-2 plus tail 2-3: edge (0,1) has exactly one common
        // neighbor, vertex 2 with degree 3.
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs([(0, 1), (0, 2), (1, 2), (2, 3)]));
        let c = reference_counts(&g);
        let v = CncView::new(&g, &c);
        let aa = v.adamic_adar(0, 1).unwrap();
        assert!((aa - 1.0 / 3f64.ln()).abs() < 1e-12);
        let ra = v.resource_allocation(0, 1).unwrap();
        assert!((ra - 1.0 / 3.0).abs() < 1e-12);
        // No common neighbors → zero; non-edge → None.
        assert_eq!(v.adamic_adar(2, 3), Some(0.0));
        assert_eq!(v.resource_allocation(0, 3), None);
    }

    #[test]
    fn adamic_adar_penalizes_hub_mediated_ties() {
        // Pair (a, b) shares a low-degree mediator; pair (c, d) shares a
        // hub: AA must rank the first tie stronger.
        let mut el = EdgeList::new(30);
        // a=0, b=1 share mediator 2 (degree 2 + edges to a,b only).
        el.push(0, 2);
        el.push(1, 2);
        el.push(0, 1);
        // c=3, d=4 share hub 5 connected to everything else.
        el.push(3, 5);
        el.push(4, 5);
        el.push(3, 4);
        for x in 6..30 {
            el.push(5, x);
        }
        let g = CsrGraph::from_edge_list(&el);
        let c = reference_counts(&g);
        let v = CncView::new(&g, &c);
        let strong = v.adamic_adar(0, 1).unwrap();
        let weak = v.adamic_adar(3, 4).unwrap();
        assert!(
            strong > 2.0 * weak,
            "low-degree mediator must outweigh hub: {strong} vs {weak}"
        );
        // Plain counts cannot tell them apart.
        assert_eq!(v.count(0, 1), v.count(3, 4));
    }

    #[test]
    fn top_k_edges_ranks_by_score() {
        let mut el = generators::complete(4); // strong core
        el.push(0, 4); // weak pendant
        let g = CsrGraph::from_edge_list(&el);
        let c = reference_counts(&g);
        let v = CncView::new(&g, &c);
        let top = v.top_k_edges_by(3, |view, eid| view.jaccard(eid));
        assert_eq!(top.len(), 3);
        // Every reported edge is canonical (u < v) and from the clique.
        for (u, vv, score) in &top {
            assert!(u < vv);
            assert!(*vv <= 3, "pendant edge must not rank in the top 3");
            assert!(*score > 0.0);
        }
        // Scores are non-increasing.
        assert!(top.windows(2).all(|w| w[0].2 >= w[1].2));
        // Asking for more than exists returns all edges.
        assert_eq!(v.top_k_edges_by(100, |view, eid| view.cosine(eid)).len(), 7);
    }
}
