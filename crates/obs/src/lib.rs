//! # cnc-obs — structured observability for the counting pipeline.
//!
//! The paper's whole argument is quantitative — operation counts, bandwidth,
//! per-stage timings — so every run of this reproduction should produce the
//! same kind of auditable, structured evidence. This crate is the
//! measurement substrate the rest of the workspace records into:
//!
//! * a **hierarchical span timer** ([`span`]): wall-clock spans recorded via
//!   RAII guards, assembled into a `prepare → plan → execute → task` tree;
//! * a **typed metrics registry** ([`metrics`]): every counter the workspace
//!   produces — kernel work tallies, prepared-graph cache evidence, GPU
//!   warp/memory statistics, machine-model components — identified by one
//!   [`Counter`] enum and recorded through the [`MetricsSink`] trait. The
//!   default sink is a lock-free sharded array of atomics, safe to hammer
//!   from every rayon worker at once;
//! * a **run report** ([`report`]): the immutable snapshot of both, with a
//!   stable versioned JSON rendering (`--metrics`) and a human-readable span
//!   tree (`--trace`).
//!
//! Instrumentation is *ambient*: an [`ObsContext`] installed on the current
//! thread (see [`context`]) is picked up by every instrumented layer below
//! it, and when none is installed every probe is a no-op — uninstrumented
//! runs pay (almost) nothing and never change results.
//!
//! The crate is intentionally zero-dependency (`std` only) so every other
//! crate in the workspace can depend on it without cycles or feature creep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod context;
pub mod metrics;
pub mod report;
pub mod span;

pub use context::{ObsContext, ObsGuard};
pub use metrics::{Counter, CounterSnapshot, MetricsSink, ShardedRegistry};
pub use report::{json_string, MetricsFile, RunReport, SCHEMA_NAME, SCHEMA_VERSION};
pub use span::{SpanGuard, SpanId, SpanNode, SpanRecorder};
