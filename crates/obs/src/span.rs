//! Hierarchical wall-clock span timing.
//!
//! A [`SpanRecorder`] collects flat `{id, parent, name, start, duration}`
//! records; [`SpanGuard`] is the RAII handle that stamps the duration when it
//! drops. The tree is only reassembled at report time ([`SpanRecorder::tree`]),
//! so recording a span is one `Instant::now()` plus a short mutex-protected
//! push — cheap enough for per-stage spans, and per-task spans are only taken
//! when a context is installed at all.
//!
//! Parentage is explicit: a guard opened via [`SpanRecorder::span`] nests
//! under the recorder's notion of "current span on this thread", while
//! [`SpanRecorder::span_under`] takes the parent id directly. The latter is
//! what the rayon driver uses — worker threads do not inherit the installing
//! thread's current span, so the driver captures the `execute` span's id once
//! and passes it to every task explicitly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identifier of a recorded span. Ids are unique per recorder and start at 1;
/// `SpanId(0)` is never issued (parent `None` marks roots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// One completed span, as stored flat inside the recorder.
#[derive(Debug, Clone)]
struct SpanRec {
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    /// Nanoseconds from the recorder's epoch to span start.
    start_ns: u64,
    /// Span duration in nanoseconds.
    dur_ns: u64,
    /// Optional work-item count (e.g. edges in a task range); 0 when unused.
    items: u64,
}

/// A node of the reassembled span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Static span name (`"prepare"`, `"execute"`, `"task"`, ...).
    pub name: &'static str,
    /// Nanoseconds from the recorder's epoch to span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional work-item count carried by the span (0 when unused).
    pub items: u64,
    /// Child spans, ordered by start time.
    pub children: Vec<SpanNode>,
}

/// Upper bound on retained spans per recorder. A run over the five tiny
/// analogues records a few hundred; the cap only exists so a pathological
/// caller (per-edge spans, say) degrades by dropping spans — counted in
/// [`dropped`](SpanRecorder::dropped) — instead of growing without bound.
const MAX_SPANS: usize = 65_536;

/// Collects spans for one run.
pub struct SpanRecorder {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRec>>,
    dropped: AtomicU64,
    /// The innermost open span on each thread, keyed by the guard stack.
    /// Kept thread-local via [`CURRENT_SPAN`] rather than in the recorder so
    /// that concurrent threads each see their own nesting chain.
    _private: (),
}

thread_local! {
    /// Innermost open span id on this thread (per-thread nesting chain).
    static CURRENT_SPAN: std::cell::Cell<Option<SpanId>> = const { std::cell::Cell::new(None) };
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.spans.lock().map(|s| s.len()).unwrap_or(0);
        f.debug_struct("SpanRecorder")
            .field("spans", &len)
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanRecorder {
    /// A fresh recorder whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            _private: (),
        }
    }

    /// Open a span nested under this thread's innermost open span.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let parent = CURRENT_SPAN.with(|c| c.get());
        self.open(name, parent, true)
    }

    /// Open a span under an explicit parent (for work handed to other
    /// threads, where the thread-local nesting chain does not apply).
    pub fn span_under(&self, name: &'static str, parent: Option<SpanId>) -> SpanGuard<'_> {
        self.open(name, parent, false)
    }

    fn open(&self, name: &'static str, parent: Option<SpanId>, track: bool) -> SpanGuard<'_> {
        let id = SpanId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let prev = if track {
            CURRENT_SPAN.with(|c| c.replace(Some(id)))
        } else {
            None
        };
        SpanGuard {
            recorder: self,
            id,
            parent,
            name,
            start: Instant::now(),
            items: 0,
            restore: if track { Some(prev) } else { None },
        }
    }

    /// Number of spans discarded because the recorder was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn record(&self, rec: SpanRec) {
        let Ok(mut spans) = self.spans.lock() else {
            // A panic while holding the span buffer is an observability
            // failure only; drop the record rather than propagate.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if spans.len() >= MAX_SPANS {
            drop(spans);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(rec);
    }

    /// Reassemble the recorded spans into root trees, children ordered by
    /// start time. Spans whose parent was dropped become roots.
    pub fn tree(&self) -> Vec<SpanNode> {
        let mut recs: Vec<SpanRec> = match self.spans.lock() {
            Ok(s) => s.clone(),
            Err(_) => return Vec::new(),
        };
        recs.sort_by_key(|r| (r.start_ns, r.id));
        // Map id → index into a flat node arena, then attach children.
        let mut nodes: Vec<SpanNode> = recs
            .iter()
            .map(|r| SpanNode {
                name: r.name,
                start_ns: r.start_ns,
                dur_ns: r.dur_ns,
                items: r.items,
                children: Vec::new(),
            })
            .collect();
        let index_of: std::collections::HashMap<SpanId, usize> =
            recs.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
        // A parent always starts no later than its child, and at equal start
        // the parent's smaller id sorts it first — so iterating the sorted
        // records in reverse processes every child before its parent, letting
        // us move child nodes out of the arena into their parents.
        let mut roots = Vec::new();
        for i in (0..recs.len()).rev() {
            let node = std::mem::replace(
                &mut nodes[i],
                SpanNode {
                    name: "",
                    start_ns: 0,
                    dur_ns: 0,
                    items: 0,
                    children: Vec::new(),
                },
            );
            match recs[i].parent.and_then(|p| index_of.get(&p).copied()) {
                Some(pi) if pi != i => nodes[pi].children.insert(0, node),
                _ => roots.insert(0, node),
            }
        }
        roots
    }
}

/// RAII handle for an open span; records the span when dropped.
pub struct SpanGuard<'a> {
    recorder: &'a SpanRecorder,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start: Instant,
    items: u64,
    /// `Some(prev)` when this guard updated the thread-local nesting chain
    /// and must restore `prev` on drop; `None` for explicit-parent spans.
    restore: Option<Option<SpanId>>,
}

impl SpanGuard<'_> {
    /// The id of this span, for use as an explicit parent of spans opened on
    /// other threads.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attach a work-item count (e.g. number of edges in a task range).
    pub fn set_items(&mut self, items: u64) {
        self.items = items;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(prev) = self.restore {
            CURRENT_SPAN.with(|c| c.set(prev));
        }
        let start_ns = self
            .start
            .duration_since(self.recorder.epoch)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let dur_ns = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.recorder.record(SpanRec {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns,
            dur_ns,
            items: self.items,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_follows_guard_scopes() {
        let r = SpanRecorder::new();
        {
            let _outer = r.span("outer");
            {
                let _inner = r.span("inner");
            }
            {
                let mut second = r.span("second");
                second.set_items(42);
            }
        }
        let tree = r.tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "outer");
        let kids: Vec<_> = tree[0].children.iter().map(|c| c.name).collect();
        assert_eq!(kids, vec!["inner", "second"]);
        assert_eq!(tree[0].children[1].items, 42);
    }

    #[test]
    fn explicit_parent_attaches_across_threads() {
        let r = std::sync::Arc::new(SpanRecorder::new());
        let parent_id;
        {
            let exec = r.span("execute");
            parent_id = exec.id();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let r = std::sync::Arc::clone(&r);
                    std::thread::spawn(move || {
                        let mut g = r.span_under("task", Some(parent_id));
                        g.set_items(i);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("task thread panicked");
            }
        }
        let tree = r.tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "execute");
        assert_eq!(tree[0].children.len(), 4);
        assert!(tree[0].children.iter().all(|c| c.name == "task"));
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let r = SpanRecorder::new();
        {
            let _a = r.span("a");
        }
        {
            let _b = r.span("b");
        }
        let tree = r.tree();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree[0].name, "a");
        assert_eq!(tree[1].name, "b");
    }

    #[test]
    fn children_sorted_by_start_time() {
        let r = SpanRecorder::new();
        {
            let _root = r.span("root");
            for _ in 0..3 {
                let _c = r.span("child");
            }
        }
        let tree = r.tree();
        let starts: Vec<_> = tree[0].children.iter().map(|c| c.start_ns).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }
}
