//! Ambient observability context.
//!
//! An [`ObsContext`] bundles a [`SpanRecorder`] and a [`MetricsSink`].
//! Installing it ([`ObsContext::install`]) pushes it onto a thread-local
//! stack; every instrumented layer below asks [`ObsContext::current`] and
//! gets `None` when nothing is installed, making all probes no-ops on
//! uninstrumented runs. The stack (rather than a single slot) lets nested
//! scopes — a metered verification run inside an observed benchmark, say —
//! each see their own context and restore the outer one on drop.
//!
//! The context is `Arc`-shared so it can be captured by value into rayon
//! closures: worker threads do not see the installing thread's stack, so
//! parallel drivers clone the `Arc` (plus the parent [`SpanId`]) before the
//! parallel loop and record through it explicitly.

use std::cell::RefCell;
use std::sync::Arc;

use crate::metrics::{Counter, CounterSnapshot, MetricsSink, ShardedRegistry};
use crate::span::{SpanGuard, SpanId, SpanRecorder};

/// A live observability scope: one span recorder plus one metrics sink.
pub struct ObsContext {
    recorder: SpanRecorder,
    sink: Box<dyn MetricsSink>,
}

impl std::fmt::Debug for ObsContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsContext")
            .field("recorder", &self.recorder)
            .finish()
    }
}

thread_local! {
    static STACK: RefCell<Vec<Arc<ObsContext>>> = const { RefCell::new(Vec::new()) };
}

impl Default for ObsContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsContext {
    /// A fresh context backed by the default [`ShardedRegistry`].
    pub fn new() -> Self {
        Self::with_sink(Box::new(ShardedRegistry::new()))
    }

    /// A fresh context recording into a caller-supplied sink.
    pub fn with_sink(sink: Box<dyn MetricsSink>) -> Self {
        Self {
            recorder: SpanRecorder::new(),
            sink,
        }
    }

    /// Install on the current thread; the returned guard uninstalls on drop.
    pub fn install(self: &Arc<Self>) -> ObsGuard {
        STACK.with(|s| s.borrow_mut().push(Arc::clone(self)));
        ObsGuard { _private: () }
    }

    /// The innermost installed context on this thread, if any.
    pub fn current() -> Option<Arc<ObsContext>> {
        STACK.with(|s| s.borrow().last().cloned())
    }

    /// Add `n` to `counter` in this context's sink.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        self.sink.add(counter, n);
    }

    /// Snapshot every counter in this context's sink.
    pub fn counters(&self) -> CounterSnapshot {
        self.sink.snapshot()
    }

    /// The span recorder (for [`SpanRecorder::tree`] at report time).
    pub fn recorder(&self) -> &SpanRecorder {
        &self.recorder
    }

    /// Open a span nested under this thread's innermost open span.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.recorder.span(name)
    }

    /// Open a span under an explicit parent (cross-thread work).
    pub fn span_under(&self, name: &'static str, parent: Option<SpanId>) -> SpanGuard<'_> {
        self.recorder.span_under(name, parent)
    }

    /// Convenience: add to the innermost installed context, if any.
    #[inline]
    pub fn add_current(counter: Counter, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(ctx) = Self::current() {
            ctx.add(counter, n);
        }
    }

    /// Run `f` inside a span named `name` on the innermost installed
    /// context; when none is installed, just run `f`. This is the one-line
    /// probe instrumented layers use so uninstrumented runs stay untouched.
    #[inline]
    pub fn scoped<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
        match Self::current() {
            Some(ctx) => {
                let _g = ctx.span(name);
                f()
            }
            None => f(),
        }
    }
}

/// A context is itself a sink: records forward to its inner sink, snapshots
/// read it. Lets `&dyn MetricsSink` consumers accept an [`ObsContext`]
/// directly.
impl MetricsSink for ObsContext {
    #[inline]
    fn add(&self, counter: Counter, n: u64) {
        ObsContext::add(self, counter, n);
    }

    fn snapshot(&self) -> CounterSnapshot {
        self.counters()
    }
}

/// Uninstalls the matching [`ObsContext`] from the thread stack on drop.
#[must_use = "dropping the guard immediately uninstalls the context"]
pub struct ObsGuard {
    _private: (),
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_is_none_without_install() {
        assert!(ObsContext::current().is_none());
        // add_current is a harmless no-op.
        ObsContext::add_current(Counter::KernelScalarOps, 5);
    }

    #[test]
    fn install_stack_nests_and_restores() {
        let outer = Arc::new(ObsContext::new());
        let inner = Arc::new(ObsContext::new());
        {
            let _g1 = outer.install();
            {
                let _g2 = inner.install();
                ObsContext::add_current(Counter::DriverTasks, 1);
            }
            ObsContext::add_current(Counter::DriverTasks, 2);
        }
        assert!(ObsContext::current().is_none());
        assert_eq!(inner.counters().get(Counter::DriverTasks), 1);
        assert_eq!(outer.counters().get(Counter::DriverTasks), 2);
    }

    #[test]
    fn context_is_not_visible_on_other_threads() {
        let ctx = Arc::new(ObsContext::new());
        let _g = ctx.install();
        std::thread::spawn(|| {
            assert!(ObsContext::current().is_none());
        })
        .join()
        .expect("probe thread panicked");
    }

    #[test]
    fn captured_context_records_from_worker_threads() {
        let ctx = Arc::new(ObsContext::new());
        let parent = {
            let exec = ctx.span("execute");
            let id = exec.id();
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let ctx = Arc::clone(&ctx);
                    std::thread::spawn(move || {
                        let _t = ctx.span_under("task", Some(id));
                        ctx.add(Counter::DriverTasks, 1);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker panicked");
            }
            id
        };
        let _ = parent;
        assert_eq!(ctx.counters().get(Counter::DriverTasks), 3);
        let tree = ctx.recorder().tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].children.len(), 3);
    }
}
