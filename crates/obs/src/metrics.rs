//! The typed metrics registry.
//!
//! Counters are identified by the closed [`Counter`] enum rather than by
//! strings: every metric the workspace records is declared here once, with
//! its stable JSON name, so the registry can be a flat array of atomics (no
//! hashing, no interning, no allocation on the hot path) and the schema of
//! `--metrics` output is checkable at compile time.
//!
//! [`ShardedRegistry`] is the default [`MetricsSink`]: a fixed number of
//! cache-line-padded shards, each a `[AtomicU64; Counter::COUNT]`. A record
//! is one relaxed `fetch_add` on the shard picked from the calling thread's
//! id — no locks anywhere, so rayon workers recording per-task tallies never
//! serialize against each other. Reads sum across shards; totals are exact
//! once the recording threads have quiesced (the only state a reader can
//! observe mid-run is a momentarily stale partial sum).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// Every metric the workspace records, with its stable JSON name.
        ///
        /// The name namespaces the source subsystem (`kernel.`, `prepare.`,
        /// `gpu.`, `model.`, `driver.`): renaming or removing a counter is a
        /// schema change and requires a [`crate::SCHEMA_VERSION`] bump;
        /// adding one is backward compatible.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(usize)]
        pub enum Counter {
            $($(#[$doc])* $variant,)+
        }

        impl Counter {
            /// Number of declared counters.
            pub const COUNT: usize = [$(Counter::$variant),+].len();

            /// All counters, in declaration (and JSON output) order.
            pub const ALL: [Counter; Counter::COUNT] = [$(Counter::$variant),+];

            /// The stable dotted JSON name.
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name,)+
                }
            }
        }
    };
}

counters! {
    // --- kernel work (cnc-intersect Meter tallies) -----------------------
    /// Scalar comparisons / branchy loop iterations.
    KernelScalarOps => "kernel.scalar_ops",
    /// SIMD block operations.
    KernelVectorOps => "kernel.vector_ops",
    /// Bytes streamed sequentially.
    KernelSeqBytes => "kernel.seq_bytes",
    /// Random accesses into large working sets.
    KernelRandAccesses => "kernel.rand_accesses",
    /// Random accesses into small cache-resident structures.
    KernelRandAccessesSmall => "kernel.rand_accesses_small",
    /// Bytes written (count stores, bitmap construction).
    KernelWriteBytes => "kernel.write_bytes",
    /// Completed neighbor-set intersections.
    KernelIntersections => "kernel.intersections",
    /// `begin_source` invocations across all tasks: per-source state
    /// (BMP's bitmap) rebuilds. Source-aligned scheduling minimizes these.
    KernelSourceRebuilds => "kernel.source_rebuilds",
    /// Wide probe blocks (8/16 keys each) executed by a vector or
    /// chunked-portable path. Tier-dependent: attributes wall-clock to the
    /// SIMD tier that actually ran; not consumed by the machine models.
    KernelSimdBlocks => "kernel.simd_blocks",
    /// Keys handled by the scalar tail after a wide probe loop.
    /// Tier-dependent, like `kernel.simd_blocks`.
    KernelSimdTailElems => "kernel.simd_tail_elems",
    // --- preparation layer (cnc-graph PrepareMetrics) --------------------
    /// Edge-list → CSR constructions.
    PrepareGraphBuilds => "prepare.graph_builds",
    /// Degree-descending relabels performed.
    PrepareReorders => "prepare.reorders",
    /// In-memory prepared-graph cache hits.
    PrepareMemHits => "prepare.mem_hits",
    /// On-disk prepared-graph cache hits.
    PrepareDiskHits => "prepare.disk_hits",
    /// On-disk prepared-graph cache writes.
    PrepareDiskWrites => "prepare.disk_writes",
    /// Zero-copy mmap cache loads.
    PrepareMmapHits => "prepare.mmap_hits",
    /// CSR bytes served zero-copy across all mmap hits.
    PrepareBytesMapped => "prepare.bytes_mapped",
    /// External-sort spill runs written by the streaming preparation
    /// pipeline (0 when the whole input fit the memory budget).
    PrepareSpillRuns => "prepare.spill_runs",
    /// Bytes written to spill run files by the streaming preparation.
    PrepareSpillBytes => "prepare.spill_bytes",
    /// Fixed-size input chunks consumed by the streaming edge readers.
    PrepareStreamChunks => "prepare.stream_chunks",
    /// Peak accounted heap bytes of the streaming builder (each streamed
    /// build records its own peak once; single-build runs read it directly).
    PreparePeakResidentBytes => "prepare.peak_resident_bytes",
    // --- parallel driver (cnc-cpu) ---------------------------------------
    /// Edge-range tasks executed by the parallel skeleton.
    DriverTasks => "driver.tasks",
    /// Tasks produced by the schedule (equals `driver.tasks` per run).
    ScheduleTasks => "schedule.tasks",
    /// Largest estimated task cost in the computed schedule.
    ScheduleEstCostMax => "schedule.est_cost_max",
    /// Smallest estimated task cost in the computed schedule.
    ScheduleEstCostMin => "schedule.est_cost_min",
    // --- workload layer (cnc-workload strategies on the shared driver) ----
    /// Canonical pairs actually visited (covered by the active workload).
    WorkloadEdgesVisited => "workload.edges_visited",
    /// Canonical pairs skipped by the workload's cover predicate (always 0
    /// for CNC, which covers every pair).
    WorkloadEdgesSkipped => "workload.edges_skipped",
    /// The headline global result for global-output workloads (triangle
    /// total; largest-clique-size count). Absent for per-edge outputs.
    WorkloadGlobalCount => "workload.global_count",
    // --- GPU simulator (cnc-gpu KernelStats + unified memory) ------------
    /// Warp instructions issued.
    GpuWarpInstrs => "gpu.warp_instrs",
    /// Bytes moved by coalesced global accesses.
    GpuCoalescedBytes => "gpu.coalesced_bytes",
    /// Scattered global transactions.
    GpuScatteredTrans => "gpu.scattered_trans",
    /// Shared-memory operations.
    GpuSharedOps => "gpu.shared_ops",
    /// Global atomic operations.
    GpuAtomics => "gpu.atomics",
    /// Thread blocks executed.
    GpuBlocks => "gpu.blocks",
    /// Unified-memory faults across the run.
    GpuFaults => "gpu.faults",
    /// Bytes migrated host→device.
    GpuMigratedBytes => "gpu.migrated_bytes",
    /// Multi-pass executions performed.
    GpuPasses => "gpu.passes",
    // --- query service (cnc-serve) ----------------------------------------
    /// Point-query requests admitted by the serve layer (before
    /// deduplication; rejected-overloaded requests are not counted).
    ServeRequests => "serve.requests",
    /// Coalesced batches executed by the serve layer.
    ServeBatches => "serve.batches",
    /// Requests answered without their own kernel work: duplicates folded
    /// into an already-admitted query of the same batch
    /// (`serve.requests - serve.coalesced` distinct pairs were executed).
    ServeCoalesced => "serve.coalesced",
    /// Deepest admission-queue occupancy observed (recorded once, at
    /// report time).
    ServeQueueDepthMax => "serve.queue_depth_max",
    // --- sharded multi-process execution (cnc-shard) ----------------------
    /// Worker processes the shard coordinator spawned (retries included).
    ShardWorkers => "shard.workers",
    /// Largest estimated per-shard range cost in the coordinator's cut.
    ShardRangeCostMax => "shard.range_cost_max",
    /// Smallest estimated per-shard range cost in the coordinator's cut.
    ShardRangeCostMin => "shard.range_cost_min",
    /// Worker processes that died or mis-spoke and were retried (a run that
    /// completes with failures > 0 recovered through its bounded retry).
    ShardWorkerFailures => "shard.worker_failures",
    // --- shared-memory machine model (cnc-machine) -----------------------
    /// Timing estimates computed by the machine model.
    ModelEstimates => "model.estimates",
    /// Bytes the model priced as sequential streaming.
    ModelSeqBytes => "model.seq_bytes",
    /// Bytes the model priced as writes.
    ModelWriteBytes => "model.write_bytes",
    /// Modeled elapsed time, nanoseconds (summed over estimates).
    ModelElapsedNanos => "model.elapsed_ns",
    // --- observability self-accounting -----------------------------------
    /// Spans dropped because a recorder hit its capacity bound.
    ObsSpansDropped => "obs.spans_dropped",
}

/// Sink for counter increments.
///
/// Implementations must be safe to call concurrently from many threads
/// (rayon workers record per-task tallies directly).
pub trait MetricsSink: Send + Sync {
    /// Add `n` to `counter`.
    fn add(&self, counter: Counter, n: u64);

    /// A consistent-enough snapshot of every counter (exact once recording
    /// threads have quiesced).
    fn snapshot(&self) -> CounterSnapshot;
}

/// A point-in-time copy of every counter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: [u64; Counter::COUNT],
}

impl Default for CounterSnapshot {
    fn default() -> Self {
        Self {
            values: [0; Counter::COUNT],
        }
    }
}

impl CounterSnapshot {
    /// The value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// Set one counter (snapshot assembly).
    pub fn set(&mut self, c: Counter, v: u64) {
        self.values[c as usize] = v;
    }

    /// Counters with nonzero values, in declaration order.
    pub fn nonzero(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .iter()
            .map(|&c| (c, self.get(c)))
            .filter(|&(_, v)| v != 0)
    }

    /// Component-wise saturating difference (`self - earlier`).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut out = CounterSnapshot::default();
        for c in Counter::ALL {
            out.set(c, self.get(c).saturating_sub(earlier.get(c)));
        }
        out
    }
}

/// One cache line of atomics per counter block, to keep shards from
/// false-sharing each other.
#[repr(align(64))]
struct Shard {
    values: [AtomicU64; Counter::COUNT],
}

impl Shard {
    fn new() -> Self {
        Self {
            values: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Number of shards in the default registry. A small power of two: enough
/// to spread a laptop's worth of rayon workers, cheap to sum at read time.
const SHARDS: usize = 16;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each recording thread gets a stable shard index, assigned round-robin
    /// on first use — perfectly spread regardless of thread-id hashing.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// The default lock-free sharded [`MetricsSink`].
///
/// `add` is one relaxed `fetch_add` on the calling thread's shard; there is
/// no lock, no allocation, and no branch beyond the array index, so the
/// instrumented parallel drivers scale exactly as the uninstrumented ones.
pub struct ShardedRegistry {
    shards: Vec<Shard>,
}

impl std::fmt::Debug for ShardedRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRegistry")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Default for ShardedRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedRegistry {
    /// A fresh registry with all counters at zero.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }
}

impl MetricsSink for ShardedRegistry {
    #[inline]
    fn add(&self, counter: Counter, n: u64) {
        if n == 0 {
            return;
        }
        let slot = THREAD_SLOT.with(|s| *s);
        self.shards[slot].values[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> CounterSnapshot {
        let mut out = CounterSnapshot::default();
        for c in Counter::ALL {
            let total = self
                .shards
                .iter()
                .map(|s| s.values[c as usize].load(Ordering::Relaxed))
                .sum();
            out.set(c, total);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn names_are_unique_and_namespaced() {
        let mut seen = std::collections::HashSet::new();
        for c in Counter::ALL {
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
            assert!(c.name().contains('.'), "{} is not namespaced", c.name());
        }
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
    }

    #[test]
    fn add_and_snapshot_round_trip() {
        let r = ShardedRegistry::new();
        r.add(Counter::KernelScalarOps, 3);
        r.add(Counter::KernelScalarOps, 4);
        r.add(Counter::GpuFaults, 1);
        r.add(Counter::PrepareMemHits, 0); // no-op
        let s = r.snapshot();
        assert_eq!(s.get(Counter::KernelScalarOps), 7);
        assert_eq!(s.get(Counter::GpuFaults), 1);
        assert_eq!(s.get(Counter::PrepareMemHits), 0);
        let nz: Vec<_> = s.nonzero().collect();
        assert_eq!(
            nz,
            vec![(Counter::KernelScalarOps, 7), (Counter::GpuFaults, 1)]
        );
    }

    #[test]
    fn since_subtracts_saturating() {
        let r = ShardedRegistry::new();
        r.add(Counter::DriverTasks, 5);
        let early = r.snapshot();
        r.add(Counter::DriverTasks, 2);
        let late = r.snapshot();
        assert_eq!(late.since(&early).get(Counter::DriverTasks), 2);
        assert_eq!(early.since(&late).get(Counter::DriverTasks), 0);
    }

    #[test]
    fn concurrent_adds_never_lose_increments() {
        let r = Arc::new(ShardedRegistry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        r.add(Counter::KernelIntersections, 1);
                        r.add(Counter::KernelSeqBytes, 8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread panicked");
        }
        let s = r.snapshot();
        assert_eq!(s.get(Counter::KernelIntersections), threads * per_thread);
        assert_eq!(s.get(Counter::KernelSeqBytes), threads * per_thread * 8);
    }
}
