//! Run reports: the immutable snapshot of counters + spans, with a stable
//! versioned JSON rendering and a human-readable trace tree.
//!
//! The JSON layout is the `cnc-metrics` schema, documented in DESIGN.md
//! §Observability. One report serializes as:
//!
//! ```json
//! {
//!   "enabled": true,
//!   "counters": {"kernel.scalar_ops": 123, ...},
//!   "spans": [{"name": "prepare", "start_ns": 0, "dur_ns": 42,
//!              "items": 0, "children": [...]}],
//!   "spans_dropped": 0
//! }
//! ```
//!
//! Top-level files produced by `cnc run --metrics` wrap a list of reports as
//! `{"schema": "cnc-metrics", "version": 1, "runs": [...]}` — see the CLI.
//! Counters with value zero are omitted; consumers must treat a missing key
//! as zero. Removing or renaming a counter, or changing the span-object
//! shape, bumps [`SCHEMA_VERSION`]; adding counters does not.

use crate::context::ObsContext;
use crate::metrics::{Counter, CounterSnapshot};
use crate::span::SpanNode;

/// The schema identifier emitted at the top level of metrics files.
pub const SCHEMA_NAME: &str = "cnc-metrics";

/// Current schema version. Bumped on any backward-incompatible change
/// (counter removal/rename, span-shape change); additions keep it.
pub const SCHEMA_VERSION: u32 = 1;

/// Immutable observability snapshot for one run.
///
/// Every `CncResult` carries one. When the run executed without an installed
/// [`ObsContext`] the report is [`disabled`](RunReport::disabled): empty and
/// flagged `enabled: false`, so downstream consumers can tell "nothing
/// happened" from "nothing was measured".
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Whether an observability context was active during the run.
    pub enabled: bool,
    /// Final counter values.
    pub counters: CounterSnapshot,
    /// Root spans of the recorded tree.
    pub spans: Vec<SpanNode>,
    /// Spans discarded because the recorder hit its capacity bound.
    pub spans_dropped: u64,
}

impl RunReport {
    /// The report attached to runs executed without an installed context.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Snapshot a live context into a report.
    pub fn from_context(ctx: &ObsContext) -> Self {
        Self {
            enabled: true,
            counters: ctx.counters(),
            spans: ctx.recorder().tree(),
            spans_dropped: ctx.recorder().dropped(),
        }
    }

    /// The value of one counter (zero when the report is disabled).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c)
    }

    /// Render this report as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.write_json(&mut out);
        out
    }

    /// Append this report's JSON object to `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"enabled\":");
        out.push_str(if self.enabled { "true" } else { "false" });
        out.push_str(",\"counters\":{");
        let mut first = true;
        for (c, v) in self.counters.nonzero() {
            if !first {
                out.push(',');
            }
            first = false;
            json_string(out, c.name());
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"spans\":[");
        for (i, node) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_span_json(out, node);
        }
        out.push_str("],\"spans_dropped\":");
        out.push_str(&self.spans_dropped.to_string());
        out.push('}');
    }

    /// Render the span tree as an indented human-readable listing
    /// (the `--trace` output). Durations are shown in the most readable
    /// unit; `items` annotates spans that carry a work count.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        if !self.enabled {
            out.push_str("(trace disabled: no observability context was active)\n");
            return out;
        }
        if self.spans.is_empty() {
            out.push_str("(no spans recorded)\n");
        }
        for node in &self.spans {
            render_node(&mut out, node, 0);
        }
        if self.spans_dropped > 0 {
            out.push_str(&format!(
                "({} spans dropped at capacity)\n",
                self.spans_dropped
            ));
        }
        out
    }
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(node.name);
    out.push_str("  ");
    out.push_str(&fmt_dur(node.dur_ns));
    if node.items > 0 {
        out.push_str(&format!("  [{} items]", node.items));
    }
    // Collapse large fan-out (per-task spans): show the first few children
    // verbatim, then summarize the rest so the trace stays readable.
    const SHOWN: usize = 8;
    out.push('\n');
    for child in node.children.iter().take(SHOWN) {
        render_node(out, child, depth + 1);
    }
    if node.children.len() > SHOWN {
        let rest = &node.children[SHOWN..];
        let total_ns: u64 = rest.iter().map(|c| c.dur_ns).sum();
        for _ in 0..=depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "… {} more spans  {} total\n",
            rest.len(),
            fmt_dur(total_ns)
        ));
    }
}

fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn write_span_json(out: &mut String, node: &SpanNode) {
    out.push_str("{\"name\":");
    json_string(out, node.name);
    out.push_str(&format!(
        ",\"start_ns\":{},\"dur_ns\":{},\"items\":{},\"children\":[",
        node.start_ns, node.dur_ns, node.items
    ));
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_span_json(out, child);
    }
    out.push_str("]}");
}

/// Incremental writer for a top-level `cnc-metrics` file:
/// `{"schema": "cnc-metrics", "version": 1, "runs": [...]}`.
///
/// Each run entry is an object of caller-provided identifying fields
/// (dataset, platform, …) plus a `"report"` key holding the
/// [`RunReport`] JSON. Shared by `cnc run --metrics` and
/// `repro --metrics` so both emit the same schema.
#[derive(Debug)]
pub struct MetricsFile {
    out: String,
    runs: usize,
    fields_in_run: usize,
    in_run: bool,
}

impl Default for MetricsFile {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsFile {
    /// Start a metrics file (writes the schema/version header).
    pub fn new() -> Self {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":");
        json_string(&mut out, SCHEMA_NAME);
        out.push_str(&format!(",\"version\":{SCHEMA_VERSION},\"runs\":["));
        Self {
            out,
            runs: 0,
            fields_in_run: 0,
            in_run: false,
        }
    }

    /// Open the next run entry.
    pub fn begin_run(&mut self) {
        assert!(!self.in_run, "begin_run while a run is open");
        if self.runs > 0 {
            self.out.push(',');
        }
        self.out.push('{');
        self.runs += 1;
        self.fields_in_run = 0;
        self.in_run = true;
    }

    fn key(&mut self, key: &str) {
        assert!(self.in_run, "field outside begin_run/end_run");
        if self.fields_in_run > 0 {
            self.out.push(',');
        }
        self.fields_in_run += 1;
        json_string(&mut self.out, key);
        self.out.push(':');
    }

    /// Add a string field to the open run entry.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        json_string(&mut self.out, value);
    }

    /// Add a raw JSON fragment (number, bool, `null`, array) field.
    pub fn field_raw(&mut self, key: &str, json_fragment: &str) {
        self.key(key);
        self.out.push_str(json_fragment);
    }

    /// Close the open run entry with its `"report"` payload.
    pub fn end_run(&mut self, report: &RunReport) {
        self.key("report");
        report.write_json(&mut self.out);
        self.out.push('}');
        self.in_run = false;
    }

    /// Finish the file and return the JSON text (with trailing newline).
    pub fn finish(mut self) -> String {
        assert!(!self.in_run, "finish with a run still open");
        self.out.push_str("]}\n");
        self.out
    }
}

/// Append `s` to `out` as a JSON string literal with full escaping.
pub fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_report_serializes_flagged() {
        let r = RunReport::disabled();
        let json = r.to_json();
        assert_eq!(
            json,
            "{\"enabled\":false,\"counters\":{},\"spans\":[],\"spans_dropped\":0}"
        );
        assert!(r.render_trace().contains("trace disabled"));
    }

    #[test]
    fn live_context_round_trips_counters_and_spans() {
        let ctx = Arc::new(ObsContext::new());
        {
            let _g = ctx.install();
            let _outer = ctx.span("prepare");
            let _inner = ctx.span("csr_build");
            ctx.add(Counter::PrepareGraphBuilds, 1);
            ctx.add(Counter::KernelScalarOps, 99);
        }
        let r = RunReport::from_context(&ctx);
        assert!(r.enabled);
        assert_eq!(r.counter(Counter::PrepareGraphBuilds), 1);
        let json = r.to_json();
        assert!(json.contains("\"prepare.graph_builds\":1"));
        assert!(json.contains("\"kernel.scalar_ops\":99"));
        assert!(json.contains("\"name\":\"prepare\""));
        // csr_build is nested inside prepare's children array.
        let prepare_at = json.find("\"name\":\"prepare\"").expect("prepare span");
        let child_at = json.find("\"name\":\"csr_build\"").expect("child span");
        assert!(child_at > prepare_at);
        let trace = r.render_trace();
        assert!(trace.contains("prepare"));
        assert!(trace.contains("  csr_build"));
    }

    #[test]
    fn json_string_escapes_specials() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn metrics_file_wraps_runs_in_versioned_envelope() {
        let mut f = MetricsFile::new();
        f.begin_run();
        f.field_str("dataset", "lj-s");
        f.field_raw("wall_seconds", "0.25");
        f.field_raw("modeled_seconds", "null");
        f.end_run(&RunReport::disabled());
        f.begin_run();
        f.field_str("dataset", "or-s");
        f.end_run(&RunReport::disabled());
        let json = f.finish();
        assert!(json.starts_with("{\"schema\":\"cnc-metrics\",\"version\":1,\"runs\":["));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains(
            "{\"dataset\":\"lj-s\",\"wall_seconds\":0.25,\"modeled_seconds\":null,\"report\":{"
        ));
        assert!(json.contains("{\"dataset\":\"or-s\",\"report\":{"));
    }

    #[test]
    fn zero_counters_are_omitted() {
        let ctx = ObsContext::new();
        ctx.add(Counter::GpuFaults, 0);
        ctx.add(Counter::GpuBlocks, 2);
        let r = RunReport::from_context(&ctx);
        let json = r.to_json();
        assert!(!json.contains("gpu.faults"));
        assert!(json.contains("\"gpu.blocks\":2"));
    }
}
