//! A zero-copy (mmap-backed) prepared graph must be a perfect drop-in for a
//! heap-backed one: identical counts from every platform × algorithm
//! combination, driven through the same `Runner` entry points.

#![cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]

use std::fs::{self, File};
use std::sync::Arc;

use cnc_core::{reference_counts, Algorithm, Platform, Runner};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::prepare::{map_prepared, write_prepared};
use cnc_graph::{PreparedGraph, ReorderPolicy};
use cnc_machine::MemMode;

fn platforms(scale: f64) -> Vec<(&'static str, Platform)> {
    vec![
        ("cpu-seq", Platform::CpuSequential),
        ("cpu-par", Platform::cpu_parallel()),
        (
            "cpu-model",
            Platform::CpuModel {
                threads: 56,
                capacity_scale: scale,
            },
        ),
        ("knl-flat", Platform::knl_flat(scale)),
        (
            "knl-ddr",
            Platform::Knl {
                threads: 64,
                mode: MemMode::Ddr,
                capacity_scale: scale,
            },
        ),
        ("gpu", Platform::gpu(scale)),
    ]
}

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::MergeBaseline,
        Algorithm::mps(),
        Algorithm::bmp(),
        Algorithm::bmp_rf(),
    ]
}

#[test]
fn mapped_storage_counts_identically_everywhere() {
    let el = Dataset::OrS.edge_list(Scale::Tiny);
    let owned = PreparedGraph::from_edge_list(&el, ReorderPolicy::DegreeDescending);
    let want = reference_counts(owned.graph());

    // Round the preparation through a CNCPREP2 file and map it back.
    let dir = std::env::temp_dir().join(format!("cnc-agree-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("or-s.prep");
    write_prepared(&owned, File::create(&path).unwrap()).unwrap();
    let mapped = Arc::new(map_prepared(&path).expect("tiny analogue must map"));
    assert!(mapped.graph().storage_mapped(), "CSR must be zero-copy");
    assert!(
        mapped.reordered().unwrap().graph.storage_mapped(),
        "relabeled CSR must be zero-copy"
    );

    let scale = Dataset::OrS.capacity_scale(mapped.graph());
    for (pname, platform) in platforms(scale) {
        for algorithm in algorithms() {
            let runner = Runner::new(platform.clone(), algorithm);
            let from_mapped = runner.run_prepared(&mapped);
            assert_eq!(
                from_mapped.counts(),
                want,
                "platform={pname} algorithm={} diverges on mapped storage",
                algorithm.label()
            );
            let from_owned = runner.run_prepared(&owned);
            assert_eq!(
                from_owned.counts(),
                from_mapped.counts(),
                "platform={pname} algorithm={}: owned vs mapped",
                algorithm.label()
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
