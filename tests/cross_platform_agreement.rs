//! Cross-crate integration: every platform × algorithm combination must
//! produce identical, reference-verified counts on a corpus of graphs.

use cnc_core::{reference_counts, Algorithm, Platform, Runner};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::{generators, CsrGraph, EdgeList};
use cnc_machine::MemMode;

fn corpus() -> Vec<(String, CsrGraph)> {
    let mut out: Vec<(String, CsrGraph)> = vec![
        ("empty".into(), CsrGraph::from_edge_list(&EdgeList::new(0))),
        (
            "edgeless".into(),
            CsrGraph::from_edge_list(&EdgeList::new(7)),
        ),
        (
            "single-edge".into(),
            CsrGraph::from_edge_list(&EdgeList::from_pairs([(0, 1)])),
        ),
        (
            "triangle".into(),
            CsrGraph::from_edge_list(&EdgeList::from_pairs([(0, 1), (1, 2), (0, 2)])),
        ),
        (
            "complete-16".into(),
            CsrGraph::from_edge_list(&generators::complete(16)),
        ),
        (
            "path-64".into(),
            CsrGraph::from_edge_list(&generators::path(64)),
        ),
        (
            "star-100".into(),
            CsrGraph::from_edge_list(&generators::star(100)),
        ),
        (
            "clique-chain".into(),
            CsrGraph::from_edge_list(&generators::clique_chain(5, 7)),
        ),
        (
            "gnm".into(),
            CsrGraph::from_edge_list(&generators::gnm(300, 1500, 11)),
        ),
        (
            "power-law".into(),
            CsrGraph::from_edge_list(&generators::chung_lu(300, 9.0, 2.1, 12)),
        ),
        (
            "hub-web".into(),
            CsrGraph::from_edge_list(&generators::hub_web(300, 5.0, 2, 0.5, 13)),
        ),
        (
            "rmat".into(),
            CsrGraph::from_edge_list(&generators::rmat(8, 6, 0.57, 0.19, 0.19, 14)),
        ),
    ];
    for d in [Dataset::LjS, Dataset::TwS] {
        out.push((d.name().into(), d.build(Scale::Tiny)));
    }
    out
}

fn platforms(scale: f64) -> Vec<(&'static str, Platform)> {
    vec![
        ("cpu-seq", Platform::CpuSequential),
        ("cpu-par", Platform::cpu_parallel()),
        (
            "cpu-model",
            Platform::CpuModel {
                threads: 56,
                capacity_scale: scale,
            },
        ),
        ("knl-flat", Platform::knl_flat(scale)),
        (
            "knl-ddr",
            Platform::Knl {
                threads: 64,
                mode: MemMode::Ddr,
                capacity_scale: scale,
            },
        ),
        ("gpu", Platform::gpu(scale)),
    ]
}

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::MergeBaseline,
        Algorithm::mps(),
        Algorithm::bmp(),
        Algorithm::bmp_rf(),
    ]
}

#[test]
fn all_platforms_all_algorithms_all_graphs() {
    for (name, g) in corpus() {
        let want = reference_counts(&g);
        for (pname, platform) in platforms(1e-4) {
            for algorithm in algorithms() {
                let r = Runner::new(platform.clone(), algorithm).run(&g);
                assert_eq!(
                    r.counts(),
                    want,
                    "graph={name} platform={pname} algorithm={}",
                    algorithm.label()
                );
            }
        }
    }
}

#[test]
fn reordering_never_changes_counts() {
    for (name, g) in corpus() {
        let want = reference_counts(&g);
        for reorder in [false, true] {
            let r = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf())
                .reorder(reorder)
                .run(&g);
            assert_eq!(r.counts(), want, "graph={name} reorder={reorder}");
        }
    }
}

#[test]
fn triangle_counts_agree_across_platforms() {
    let g = Dataset::OrS.build(Scale::Tiny);
    let scale = Dataset::OrS.capacity_scale(&g);
    let mut triangle_counts = Vec::new();
    for (pname, platform) in platforms(scale) {
        let r = Runner::new(platform, Algorithm::mps()).run(&g);
        triangle_counts.push((pname, r.view(&g).triangle_count()));
    }
    let first = triangle_counts[0].1;
    assert!(first > 0, "or-s must contain triangles");
    for (pname, t) in triangle_counts {
        assert_eq!(t, first, "platform {pname} disagrees on triangle count");
    }
}
