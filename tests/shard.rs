//! Differential tests for multi-process sharded execution (`cnc-shard`).
//!
//! The layer's acceptance property is byte-identity: for every worker
//! count, the assembled per-edge counts must equal a single-process run of
//! the same plan exactly. These tests spawn real worker processes — the
//! `cnc` binary built by this package (`CARGO_BIN_EXE_cnc`) — against
//! prepared-graph files written to the system temp directory, so they
//! exercise the full coordinator/worker wire path, not an in-process
//! simulation. Fault injection is passed per-child via `ShardConfig`
//! (never `std::env::set_var` — tests run in parallel threads).

use std::path::PathBuf;
use std::sync::Arc;

use cnc_core::{Algorithm, Platform, Runner};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::{prepare, PreparedGraph, ReorderPolicy};
use cnc_obs::{Counter, ObsContext};
use cnc_shard::{run_sharded, ShardConfig, ShardError};

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_cnc"))
}

/// Write `pg` to a uniquely named prep file; returns the path.
fn write_prep(pg: &PreparedGraph, tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("cnc-shard-test-{}-{tag}.prep", std::process::id()));
    let f = std::fs::File::create(&path).expect("create prep file");
    prepare::write_prepared(pg, f).expect("write prep file");
    path
}

fn config(prep: PathBuf, workers: usize, algorithm: Algorithm) -> ShardConfig {
    ShardConfig {
        workers,
        algorithm,
        reorder: None,
        worker_exe: worker_exe(),
        prep_path: prep,
        fail_spec: None,
    }
}

fn oracle(pg: &PreparedGraph, algorithm: Algorithm, reorder: Option<bool>) -> Vec<u32> {
    let mut runner = Runner::new(Platform::CpuSequential, algorithm);
    if let Some(r) = reorder {
        runner = runner.reorder(r);
    }
    runner.run_prepared(pg).into_counts()
}

#[test]
fn sharded_counts_match_single_process_on_every_dataset() {
    for d in Dataset::ALL {
        for (reorder, policy) in [
            (None, ReorderPolicy::DegreeDescending),
            (Some(false), ReorderPolicy::None),
        ] {
            let pg = PreparedGraph::from_csr(d.build(Scale::Tiny), policy);
            let tag = format!("{}-{policy:?}", d.name());
            let prep = write_prep(&pg, &tag);
            let want = oracle(&pg, Algorithm::bmp_rf(), reorder);
            for workers in [2usize, 4, 8] {
                let mut cfg = config(prep.clone(), workers, Algorithm::bmp_rf());
                cfg.reorder = reorder;
                let out =
                    run_sharded(&pg, &cfg).unwrap_or_else(|e| panic!("{tag} x{workers}: {e}"));
                assert_eq!(
                    out.counts, want,
                    "{tag} with {workers} workers must be byte-identical"
                );
                assert_eq!(out.worker_failures, 0, "{tag} x{workers}");
                assert!(out.workers >= 1 && out.workers <= workers);
                assert!(out.range_cost_max >= out.range_cost_min);
                assert!(out.work.intersections > 0, "workers must ship work counts");
            }
            let _ = std::fs::remove_file(&prep);
        }
    }
}

#[test]
fn every_tokenizable_algorithm_shards_identically() {
    let pg = PreparedGraph::from_csr(
        Dataset::TwS.build(Scale::Tiny),
        ReorderPolicy::DegreeDescending,
    );
    let prep = write_prep(&pg, "algos");
    for algorithm in [Algorithm::MergeBaseline, Algorithm::mps(), Algorithm::bmp()] {
        let want = oracle(&pg, algorithm, None);
        for workers in [3usize, 5] {
            let out = run_sharded(&pg, &config(prep.clone(), workers, algorithm))
                .unwrap_or_else(|e| panic!("{} x{workers}: {e}", algorithm.label()));
            assert_eq!(
                out.counts,
                want,
                "{} with {workers} workers",
                algorithm.label()
            );
        }
    }
    let _ = std::fs::remove_file(&prep);
}

#[test]
fn killed_worker_is_retried_once_and_counted() {
    let pg = PreparedGraph::from_csr(
        Dataset::TwS.build(Scale::Tiny),
        ReorderPolicy::DegreeDescending,
    );
    let prep = write_prep(&pg, "kill");
    let want = oracle(&pg, Algorithm::bmp_rf(), None);

    // Shard 1's first attempt dies mid-stream; the retry must succeed and
    // the output must stay byte-identical.
    let ctx = Arc::new(ObsContext::new());
    let out = {
        let _obs = ctx.install();
        let mut cfg = config(prep.clone(), 4, Algorithm::bmp_rf());
        cfg.fail_spec = Some("1:0".into());
        run_sharded(&pg, &cfg).expect("retry must recover")
    };
    assert_eq!(out.counts, want, "retried run must stay byte-identical");
    assert_eq!(out.worker_failures, 1);
    let report = cnc_obs::RunReport::from_context(&ctx);
    assert_eq!(report.counter(Counter::ShardWorkerFailures), 1);
    assert_eq!(
        report.counter(Counter::ShardWorkers),
        out.workers as u64 + 1,
        "the failed attempt counts as a spawned worker"
    );
    assert!(report.counter(Counter::ShardRangeCostMax) > 0);
    let shard_span = report
        .spans
        .iter()
        .find(|s| s.name == "shard")
        .expect("shard span at the root");
    assert_eq!(shard_span.children.len(), out.workers);
    assert!(shard_span.children.iter().all(|c| c.name == "execute"));
    assert!(shard_span.children.iter().all(|c| c.items > 0));

    // Both attempts dying exhausts the retry budget: a typed error naming
    // the shard and the attempt count.
    let mut cfg = config(prep.clone(), 4, Algorithm::bmp_rf());
    cfg.fail_spec = Some("1:0,1:1".into());
    match run_sharded(&pg, &cfg) {
        Err(ShardError::Worker {
            shard, attempts, ..
        }) => {
            assert_eq!(shard, 1);
            assert_eq!(attempts, 2);
        }
        other => panic!("expected ShardError::Worker, got {other:?}"),
    }
    let _ = std::fs::remove_file(&prep);
}

#[test]
fn missing_worker_executable_is_a_spawn_error() {
    let pg = PreparedGraph::from_csr(
        Dataset::WiS.build(Scale::Tiny),
        ReorderPolicy::DegreeDescending,
    );
    let prep = write_prep(&pg, "spawn");
    let mut cfg = config(prep.clone(), 2, Algorithm::bmp_rf());
    cfg.worker_exe = PathBuf::from("/nonexistent/cnc-no-such-binary");
    match run_sharded(&pg, &cfg) {
        Err(ShardError::Spawn { .. }) => {}
        other => panic!("expected ShardError::Spawn, got {other:?}"),
    }
    let _ = std::fs::remove_file(&prep);
}

#[test]
fn custom_mps_config_is_rejected_with_a_typed_error() {
    let pg = PreparedGraph::from_csr(
        Dataset::WiS.build(Scale::Tiny),
        ReorderPolicy::DegreeDescending,
    );
    let prep = write_prep(&pg, "algo-reject");
    let custom = Algorithm::Mps(cnc_intersect::MpsConfig {
        skew_threshold: 7,
        ..cnc_intersect::MpsConfig::default()
    });
    match run_sharded(&pg, &config(prep.clone(), 2, custom)) {
        Err(ShardError::Algorithm(msg)) => {
            assert!(msg.contains("MPS"), "unhelpful error: {msg}")
        }
        other => panic!("expected ShardError::Algorithm, got {other:?}"),
    }
    let _ = std::fs::remove_file(&prep);
}
