//! Integration tests of the GPU simulator's cross-cutting invariants.

use cnc_core::reference_counts;
use cnc_gpu::{GpuAlgo, GpuRunConfig, GpuRunner, LaunchConfig};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::reorder;

#[test]
fn results_invariant_to_pass_count() {
    let g = Dataset::LjS.build(Scale::Tiny);
    let gpu = GpuRunner::titan_xp_for(Dataset::LjS.capacity_scale(&g));
    let want = reference_counts(&g);
    for passes in [1usize, 2, 3, 5, 9] {
        for algo in [GpuAlgo::Mps, GpuAlgo::Bmp { rf: true }] {
            let run = gpu.run(
                &g,
                algo,
                &GpuRunConfig {
                    passes: Some(passes),
                    ..GpuRunConfig::default()
                },
            );
            assert_eq!(run.counts, want, "passes={passes} algo={}", algo.label());
        }
    }
}

#[test]
fn results_invariant_to_block_size() {
    let g = Dataset::FrS.build(Scale::Tiny);
    let gpu = GpuRunner::titan_xp_for(Dataset::FrS.capacity_scale(&g));
    let want = reference_counts(&g);
    for wpb in [1usize, 2, 4, 8, 16, 32] {
        let run = gpu.run(
            &g,
            GpuAlgo::Bmp { rf: false },
            &GpuRunConfig {
                launch: LaunchConfig {
                    warps_per_block: wpb,
                    skew_threshold: 50,
                },
                ..GpuRunConfig::default()
            },
        );
        assert_eq!(run.counts, want, "warps_per_block={wpb}");
    }
}

#[test]
fn results_invariant_to_skew_threshold() {
    // Moving edges between MKernel and PSKernel must never change counts.
    let g = Dataset::TwS.build(Scale::Tiny);
    let gpu = GpuRunner::titan_xp_for(Dataset::TwS.capacity_scale(&g));
    let want = reference_counts(&g);
    for t in [0u32, 1, 10, 50, 1000, u32::MAX] {
        let run = gpu.run(
            &g,
            GpuAlgo::Mps,
            &GpuRunConfig {
                launch: LaunchConfig {
                    warps_per_block: 4,
                    skew_threshold: t,
                },
                ..GpuRunConfig::default()
            },
        );
        assert_eq!(run.counts, want, "threshold={t}");
    }
}

#[test]
fn coprocessing_is_a_pure_optimization() {
    let g = reorder::degree_descending(&Dataset::WiS.build(Scale::Tiny)).graph;
    let gpu = GpuRunner::titan_xp_for(Dataset::WiS.capacity_scale(&g));
    for algo in [GpuAlgo::Mps, GpuAlgo::Bmp { rf: true }] {
        let with = gpu.run(&g, algo, &GpuRunConfig::default());
        let without = gpu.run(
            &g,
            algo,
            &GpuRunConfig {
                coprocess: false,
                ..GpuRunConfig::default()
            },
        );
        assert_eq!(with.counts, without.counts, "{}", algo.label());
        assert!(
            with.report.postprocess_visible_s <= without.report.postprocess_visible_s,
            "{}: CP must not increase visible post-processing",
            algo.label()
        );
    }
}

#[test]
fn fault_accounting_is_monotone_in_memory_pressure() {
    // Shrinking the device never reduces faults.
    let g = Dataset::FrS.build(Scale::Tiny);
    let base = Dataset::FrS.capacity_scale(&g);
    let mut last_faults = 0u64;
    for shrink in [4.0, 1.0, 0.25] {
        let gpu = GpuRunner::titan_xp_for(base * shrink);
        let run = gpu.run(&g, GpuAlgo::Mps, &GpuRunConfig::default());
        assert!(
            run.report.faults >= last_faults,
            "shrink={shrink}: faults {} < previous {last_faults}",
            run.report.faults
        );
        last_faults = run.report.faults;
    }
}
