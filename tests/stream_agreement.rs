//! A prepared graph built by the bounded-memory streaming pipeline must be
//! a perfect drop-in for one built in memory: identical counts from every
//! platform × algorithm combination, driven through the same `Runner`
//! entry points, under both reorder policies.

#![cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]

use std::fs;
use std::sync::Arc;

use cnc_core::{reference_counts, Algorithm, Platform, Runner};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::prepare::map_prepared;
use cnc_graph::stream::{self, StreamConfig};
use cnc_graph::{PreparedGraph, ReorderPolicy};
use cnc_machine::MemMode;

fn platforms(scale: f64) -> Vec<(&'static str, Platform)> {
    vec![
        ("cpu-seq", Platform::CpuSequential),
        ("cpu-par", Platform::cpu_parallel()),
        (
            "cpu-model",
            Platform::CpuModel {
                threads: 56,
                capacity_scale: scale,
            },
        ),
        ("knl-flat", Platform::knl_flat(scale)),
        (
            "knl-ddr",
            Platform::Knl {
                threads: 64,
                mode: MemMode::Ddr,
                capacity_scale: scale,
            },
        ),
        ("gpu", Platform::gpu(scale)),
    ]
}

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::MergeBaseline,
        Algorithm::mps(),
        Algorithm::bmp(),
        Algorithm::bmp_rf(),
    ]
}

#[test]
fn streamed_preparation_counts_identically_everywhere() {
    let dir = std::env::temp_dir().join(format!("cnc-stream-agree-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    for (dataset, policy) in [
        (Dataset::OrS, ReorderPolicy::DegreeDescending),
        (Dataset::WiS, ReorderPolicy::None),
    ] {
        let el = dataset.edge_list(Scale::Tiny);
        let owned = PreparedGraph::from_edge_list(&el, policy);
        let want = reference_counts(owned.graph());

        // Stream the same edges through the external sorter under a budget
        // small enough to force disk spills, then map the image back.
        let path = dir.join(format!("{}-{}.prep", dataset.name(), policy.tag()));
        let cfg = StreamConfig {
            mem_budget: Some(8192),
            spill_dir: None,
        };
        let summary =
            stream::prepare_pairs_to_file(el.num_vertices, el.iter(), policy, &path, &cfg)
                .expect("streamed preparation must succeed");
        assert!(
            summary.spill_runs > 0,
            "{}: tiny budget must exercise the spill path",
            dataset.name()
        );
        let mapped = Arc::new(map_prepared(&path).expect("streamed image must map"));
        assert!(mapped.graph().storage_mapped(), "CSR must be zero-copy");

        let scale = dataset.capacity_scale(mapped.graph());
        for (pname, platform) in platforms(scale) {
            for algorithm in algorithms() {
                let runner = Runner::new(platform.clone(), algorithm);
                let got = runner.run_prepared(&mapped);
                assert_eq!(
                    got.counts(),
                    want,
                    "dataset={} policy={} platform={pname} algorithm={} \
                     diverges on streamed preparation",
                    dataset.name(),
                    policy.tag(),
                    algorithm.label()
                );
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
