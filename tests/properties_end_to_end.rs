//! End-to-end property tests over arbitrary graphs.

use cnc_core::{reference_counts, verify_counts, Algorithm, CncView, Platform, Runner};
use cnc_graph::{CsrGraph, EdgeList};
use proptest::prelude::*;

fn pairs(n: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_pipeline_matches_reference(ps in pairs(60, 250)) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        for algorithm in [Algorithm::mps(), Algorithm::bmp_rf()] {
            let r = Runner::new(Platform::cpu_parallel(), algorithm).run(&g);
            prop_assert!(verify_counts(&g, r.counts()).is_ok());
        }
    }

    #[test]
    fn gpu_platform_matches_cpu(ps in pairs(48, 200)) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let cpu = Runner::new(Platform::cpu_parallel(), Algorithm::mps()).run(&g);
        let gpu = Runner::new(Platform::gpu(1e-4), Algorithm::bmp_rf()).run(&g);
        prop_assert_eq!(cpu.counts(), gpu.counts());
    }

    #[test]
    fn triangle_count_equals_brute_force(ps in pairs(32, 120)) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let counts = reference_counts(&g);
        let view = CncView::new(&g, &counts);
        // Brute force over all vertex triples.
        let n = g.num_vertices() as u32;
        let mut brute = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                if g.edge_offset(a, b).is_none() {
                    continue;
                }
                for c in (b + 1)..n {
                    if g.edge_offset(b, c).is_some() && g.edge_offset(a, c).is_some() {
                        brute += 1;
                    }
                }
            }
        }
        prop_assert_eq!(view.triangle_count(), brute);
    }

    #[test]
    fn counts_bounded_by_min_degree(ps in pairs(40, 160)) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let r = Runner::new(Platform::CpuSequential, Algorithm::bmp()).run(&g);
        for (eid, u, v) in g.iter_edges() {
            let bound = g.degree(u).min(g.degree(v)) as u32;
            // Common neighbors exclude u and v themselves, so the count is
            // at most min degree minus one (v ∈ N(u) and u ∈ N(v) never
            // count).
            prop_assert!(r.counts()[eid] < bound.max(1),
                "cnt[e({},{})]={} exceeds min-degree bound {}", u, v, r.counts()[eid], bound);
        }
    }

    #[test]
    fn symmetric_counts(ps in pairs(40, 160)) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let r = Runner::new(Platform::cpu_parallel(), Algorithm::mps()).run(&g);
        for (eid, u, _v) in g.iter_edges() {
            let rev = g.reverse_offset(u, eid);
            prop_assert_eq!(r.counts()[eid], r.counts()[rev]);
        }
    }
}
