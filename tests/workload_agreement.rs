//! Differential tests pinning the non-CNC workloads to brute-force oracles.
//!
//! The triangle and k-clique workloads reuse the whole CNC execution stack
//! (preparation, scheduling, the unified edge-range driver, both kernel
//! families), so any disagreement with a from-scratch enumeration points at
//! the shared machinery. Every tiny paper analogue and a proptest corpus of
//! random multigraph-ish pair lists run under both reorder policies, both
//! kernel families, and both schedule shapes.

use cnc_core::{Algorithm, Platform, Runner, WorkloadKind, WorkloadOutput};
use cnc_cpu::{ParConfig, SchedulePolicy};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::{CsrGraph, EdgeList};
use proptest::prelude::*;

fn has_edge(g: &CsrGraph, u: u32, v: u32) -> bool {
    g.neighbors(u).binary_search(&v).is_ok()
}

/// Oracle: enumerate each triangle once through its smallest-endpoints
/// cover edge (`u < v`, common neighbor `w > v`).
fn naive_triangles(g: &CsrGraph) -> u64 {
    let mut total = 0u64;
    for (_, u, v) in g.iter_edges() {
        if u < v {
            total += g
                .neighbors(u)
                .iter()
                .filter(|&&w| w > v && has_edge(g, v, w))
                .count() as u64;
        }
    }
    total
}

/// Oracle: count cliques of every size `3..=k` by ordered DFS — each clique
/// is visited exactly once, in ascending vertex order.
fn naive_kcliques(g: &CsrGraph, k: u8) -> Vec<u64> {
    fn dfs(g: &CsrGraph, cand: &[u32], size: usize, k: usize, counts: &mut [u64]) {
        for (i, &w) in cand.iter().enumerate() {
            if size + 1 >= 3 {
                counts[size + 1 - 3] += 1;
            }
            if size + 1 < k {
                let next: Vec<u32> = cand[i + 1..]
                    .iter()
                    .copied()
                    .filter(|&x| has_edge(g, w, x))
                    .collect();
                dfs(g, &next, size + 1, k, counts);
            }
        }
    }
    let mut counts = vec![0u64; k as usize - 2];
    for u in 0..g.num_vertices() as u32 {
        let cand: Vec<u32> = g.neighbors(u).iter().copied().filter(|&v| v > u).collect();
        dfs(g, &cand, 1, k as usize, &mut counts);
    }
    counts
}

/// Both real CPU platforms, with the parallel one under both schedule
/// shapes (uniform chunks and cost-balanced source-aligned tasks).
fn cpu_platforms() -> Vec<Platform> {
    vec![
        Platform::CpuSequential,
        Platform::CpuParallel(ParConfig {
            schedule: SchedulePolicy::default(),
            threads: None,
        }),
        Platform::CpuParallel(ParConfig {
            schedule: SchedulePolicy::balanced(13),
            threads: None,
        }),
    ]
}

#[test]
fn triangle_workload_matches_oracle_and_cnc_view_on_every_analogue() {
    for d in Dataset::ALL {
        let g = d.build(Scale::Tiny);
        let want = naive_triangles(&g);
        // The per-edge CNC counts derive the same global total.
        let cnc = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run(&g);
        assert_eq!(cnc.view(&g).triangle_count(), want, "{}", d.name());
        for reorder in [false, true] {
            for algo in [Algorithm::MergeBaseline, Algorithm::bmp_rf()] {
                for platform in cpu_platforms() {
                    let r = Runner::new(platform.clone(), algo)
                        .workload(WorkloadKind::Triangle)
                        .reorder(reorder)
                        .run(&g);
                    assert_eq!(
                        r.output,
                        WorkloadOutput::Global(want),
                        "dataset={} reorder={reorder} algo={} platform={platform:?}",
                        d.name(),
                        algo.label()
                    );
                }
            }
        }
    }
}

#[test]
fn kclique_workload_matches_oracle_on_every_analogue() {
    for d in Dataset::ALL {
        let g = d.build(Scale::Tiny);
        // One k=5 enumeration serves every requested k as a prefix.
        let full = naive_kcliques(&g, 5);
        assert_eq!(full[0], naive_triangles(&g), "3-cliques are triangles");
        for k in WorkloadKind::MIN_CLIQUE_K..=WorkloadKind::MAX_CLIQUE_K {
            let want = WorkloadOutput::CliqueCounts {
                k,
                counts: full[..(k as usize - 2)].to_vec(),
            };
            for reorder in [false, true] {
                for algo in [Algorithm::MergeBaseline, Algorithm::bmp_rf()] {
                    for platform in cpu_platforms() {
                        let r = Runner::new(platform.clone(), algo)
                            .workload(WorkloadKind::KClique { k })
                            .reorder(reorder)
                            .run(&g);
                        assert_eq!(
                            r.output,
                            want,
                            "dataset={} k={k} reorder={reorder} algo={} platform={platform:?}",
                            d.name(),
                            algo.label()
                        );
                    }
                }
            }
        }
    }
}

fn pairs(n: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn workloads_match_oracles_on_random_graphs(
        ps in pairs(40, 150),
        reorder in any::<bool>(),
    ) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let tri = naive_triangles(&g);
        let cliques = naive_kcliques(&g, 5);
        // kclique(3) and triangle count the same objects.
        prop_assert_eq!(cliques[0], tri);
        for algo in [Algorithm::MergeBaseline, Algorithm::bmp_rf()] {
            for platform in cpu_platforms() {
                let t = Runner::new(platform.clone(), algo)
                    .workload(WorkloadKind::Triangle)
                    .reorder(reorder)
                    .run(&g);
                prop_assert_eq!(&t.output, &WorkloadOutput::Global(tri));
                let c = Runner::new(platform.clone(), algo)
                    .workload(WorkloadKind::KClique { k: 5 })
                    .reorder(reorder)
                    .run(&g);
                let want = WorkloadOutput::CliqueCounts { k: 5, counts: cliques.clone() };
                prop_assert_eq!(&c.output, &want);
            }
        }
    }
}
