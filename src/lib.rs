//! Umbrella crate re-exporting the aecnc workspace: see `cnc_core`.
//!
//! This crate exists so the repository-level `examples/` and `tests/`
//! directories have a package to attach to; the public API lives in
//! [`cnc_core`] and the substrate crates.

#![warn(missing_docs)]

pub use cnc_core as core;
pub use cnc_cpu as cpu;
pub use cnc_gpu as gpu;
pub use cnc_graph as graph;
pub use cnc_intersect as intersect;
pub use cnc_knl as knl;
pub use cnc_machine as machine;
