//! `cnc` — command-line all-edge common neighbor counting.
//!
//! ```text
//! cnc count  (GRAPH | --dataset NAME [--scale S])
//!            [--algo mps|bmp|bmp-rf|m] [--platform cpu|cpu-seq|knl|gpu]
//!            [--workload cnc|triangle|kclique] [--k K]
//!            [--schedule uniform|balanced] [--shards N] [--out FILE]
//!            [--stats] [--metrics FILE] [--trace]
//! cnc run    [--scale tiny|small|medium] [--dataset NAME] [--algo A]
//!            [--platform P] [--workload cnc|triangle|kclique] [--k K]
//!            [--schedule uniform|balanced] [--metrics FILE] [--trace]
//! cnc stats  GRAPH
//! cnc scan   GRAPH [--eps 0.6] [--mu 3]
//! cnc truss  GRAPH
//! cnc prepare GRAPH [--out FILE.prep] [--mem-budget BYTES] [--spill-dir D]
//!            [--reorder degdesc|none] [--metrics FILE]
//! cnc cache  [ls|gc|clear] [--dir D] [--max-bytes N]
//! cnc serve  (GRAPH | --dataset NAME [--scale S]) [--algo A]
//!            [--listen ADDR | --socket PATH] [--batch-window-us N]
//!            [--queue-cap N] [--reply-limit N] [--schedule uniform|balanced]
//!            [--metrics FILE]
//! cnc query  (--connect ADDR | --socket PATH)
//!            (count U V | topk K | scan THRESHOLD | stats | shutdown)
//! ```
//!
//! Every subcommand additionally accepts the global flag
//! `--simd scalar|portable|avx2|avx512`, which pins the instruction tier the
//! intersection kernels dispatch to (equivalent to setting `CNC_SIMD=`, but
//! an unsupported or unknown tier is a hard error instead of a fallback).
//! The forced tier is exported to child processes, so `--shards N` workers
//! execute at the same tier as the coordinator.
//!
//! `GRAPH` is a SNAP-style edge-list text file (`u v` per line, `#`
//! comments), a binary CSR written by `cnc-graph::io::write_csr`, or a
//! prepared `CNCPREP4` image written by `cnc prepare` (all detected by
//! magic). `--out` writes the per-edge counts as `u v count` lines
//! (canonical `u < v` edges once each).
//!
//! `cnc prepare` runs the bounded-memory streaming pipeline: the input is
//! read in fixed-size chunks, external-sorted under `--mem-budget` (or
//! `$CNC_PREP_MEM_BYTES`; spill runs go to `--spill-dir`), and the
//! `CNCPREP4` image is assembled directly in the output file — peak
//! resident memory stays O(|V| + chunk) however large the edge list is.
//! The result is byte-identical to what the in-memory pipeline caches, and
//! every other subcommand accepts it as `GRAPH`, skipping preparation
//! entirely.
//!
//! `cnc count --shards N` runs the count as N cooperating *processes*: the
//! coordinator cuts the edge range into cost-balanced source-aligned blocks
//! (the balanced scheduler's own cuts), each worker (`cnc shard-worker`, an
//! internal subcommand) loads the one shared prepared-graph file and
//! executes its block, and the per-shard sections are reassembled into
//! per-edge counts byte-identical to a single-process run (DESIGN.md §3h).
//! A worker that dies mid-stream is retried once; metrics land under the
//! `shard.*` counters. `--shards` accepts a `GRAPH` file or `--dataset`.
//!
//! When `--platform` is omitted, counting commands pick the parallel CPU
//! platform unless the prepared CSR is at least `$CNC_GPU_UM_THRESHOLD_BYTES`
//! (default 256 MiB), in which case the unified-memory GPU platform is
//! selected — at that size its multipass partitioning is the execution
//! model of interest.
//!
//! `--workload` selects what the edge-range driver counts: `cnc` (the
//! default per-edge common neighbor counts), `triangle` (one global
//! triangle total), or `kclique` with `--k 3..=5` (one count per clique
//! size). Non-CNC workloads run on the real CPU platforms only, and the
//! derived-analytics commands (`scan`, `truss`, `--out`) need `cnc`.
//!
//! `cnc run` counts the built-in paper analogues (all five, or one via
//! `--dataset lj-s|or-s|wi-s|tw-s|fr-s`), one observed run each.
//! `--metrics FILE` writes a `cnc-metrics` JSON file (schema documented in
//! DESIGN.md §Observability): `{"schema": "cnc-metrics", "version": 1,
//! "runs": [...]}` with per-run counter totals and the span tree.
//! `--trace` prints each run's span tree (prepare → plan → execute)
//! human-readably. Both flags also work on `count` for ad-hoc graphs.
//!
//! `cnc serve` keeps one prepared graph resident and answers point queries
//! over a length-prefixed socket protocol (DESIGN.md §3g). Requests that
//! arrive within the coalescing window (`--batch-window-us`, default 200)
//! are deduplicated, sorted by source vertex, and executed as one
//! source-aligned balanced schedule; the admission queue is bounded
//! (`--queue-cap`), refusing with a typed `overloaded` reply when full.
//! The daemon runs until a client sends `shutdown` (`cnc query ...
//! shutdown`); in-flight queries are drained and answered first.
//! `--metrics FILE` writes the final cnc-metrics JSON — including the
//! `serve.*` counters — when the daemon exits. `cnc query` is the matching
//! one-shot client.
//!
//! `cnc cache` manages the on-disk prepared-graph cache (default
//! directory: `$CNC_CACHE_DIR` or `results/cache`): `ls` lists entries
//! most-recently-used first, `gc --max-bytes N` evicts least-recently-used
//! files down to the byte budget, `clear` removes everything evictable.
//! Files held by live readers are never removed.

use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use cnc_core::{
    truss_decomposition, try_scan, Algorithm, CncView, Platform, PreparedGraph, Runner,
    WorkloadKind,
};
use cnc_cpu::{ParConfig, SchedulePolicy};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::prepare;
use cnc_graph::stats::{skew_percentage, GraphStats};
use cnc_graph::stream::{self, StreamConfig};
use cnc_graph::{io, CsrGraph};
use cnc_obs::{Counter, MetricsFile, ObsContext, RunReport};
use cnc_serve::{Client, Endpoint, ServeConfig};
use cnc_shard::{ShardConfig, WorkerArgs};

/// Environment variable overriding the prepared-CSR size (bytes) above
/// which counting commands default to the unified-memory GPU platform.
const GPU_UM_THRESHOLD_ENV: &str = "CNC_GPU_UM_THRESHOLD_BYTES";
const GPU_UM_THRESHOLD_DEFAULT: u64 = 256 << 20;

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if bytes.starts_with(b"CNCCSR01") {
        io::read_csr(bytes.as_slice()).map_err(|e| format!("bad binary CSR {path}: {e}"))
    } else {
        let el = io::read_edge_list(bytes.as_slice())
            .map_err(|e| format!("bad edge list {path}: {e}"))?;
        Ok(CsrGraph::from_edge_list(&el))
    }
}

/// Whether `path` holds a prepared `CNCPREP*` image (sniffed by magic, so
/// stale versions also land here and get a clear error instead of being
/// parsed as an edge list).
fn is_prepared_file(path: &str) -> bool {
    let mut magic = [0u8; 7];
    std::fs::File::open(path)
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut magic))
        .map(|()| &magic == b"CNCPREP")
        .unwrap_or(false)
}

/// Load a `.prep` image: zero-copy mapped where the platform allows, owned
/// heap read otherwise.
fn load_prepared(path: &str) -> Result<Arc<PreparedGraph>, String> {
    prepare::map_prepared(std::path::Path::new(path))
        .or_else(|_| std::fs::File::open(path).and_then(prepare::read_prepared))
        .map(Arc::new)
        .map_err(|e| format!("bad prepared graph {path}: {e}"))
}

/// The platform used when `--platform` is absent: parallel CPU, or the
/// unified-memory GPU platform once the prepared CSR crosses the
/// size threshold where multipass partitioning is the interesting model.
fn default_platform_name(csr_bytes: u64) -> &'static str {
    let threshold = std::env::var(GPU_UM_THRESHOLD_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(GPU_UM_THRESHOLD_DEFAULT);
    if csr_bytes >= threshold {
        "gpu"
    } else {
        "cpu"
    }
}

fn parse_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("cnc: {flag} needs a value");
        std::process::exit(2);
    }
    args.remove(pos);
    Some(args.remove(pos))
}

fn parse_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Write per-edge counts to `path`: binary when it ends in `.bin` (aligned
/// to the CSR's directed edge slots, load with `cnc_graph::io::read_counts`),
/// `u v count` text lines (canonical `u < v` edges once each) otherwise.
fn write_counts_file(path: &str, g: &CsrGraph, counts: &[u32]) -> Result<(), String> {
    let f = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    if path.ends_with(".bin") {
        cnc_graph::io::write_counts(counts, f).map_err(|e| e.to_string())?;
    } else {
        let mut w = BufWriter::new(f);
        for (eid, u, v) in g.iter_edges() {
            if u < v {
                writeln!(w, "{u}\t{v}\t{}", counts[eid]).map_err(|e| e.to_string())?;
            }
        }
        w.flush().map_err(|e| e.to_string())?;
    }
    eprintln!("wrote {path}");
    Ok(())
}

fn print_stats(g: &CsrGraph) {
    let s = GraphStats::of(g);
    println!("|V|            {}", s.num_vertices);
    println!("|E| (und.)     {}", g.num_undirected_edges());
    println!("avg degree     {:.2}", s.avg_degree);
    println!("max degree     {}", s.max_degree);
    println!("skewed (>50x)  {:.1}%", skew_percentage(g, 50));
    println!("CSR bytes      {}", g.csr_bytes());
}

/// `cnc cache [ls|gc|clear]` — inspect and trim the prepared-graph cache.
fn run_cache(mut args: Vec<String>) -> Result<(), String> {
    let dir = parse_flag(&mut args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(prepare::default_cache_dir);
    let max_bytes = parse_flag(&mut args, "--max-bytes")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|e| format!("bad --max-bytes: {e}"))
        })
        .transpose()?;
    let report = |verb: &str, out: prepare::GcOutcome| {
        let locked = if out.skipped_locked > 0 {
            format!(", {} in use (kept)", out.skipped_locked)
        } else {
            String::new()
        };
        println!(
            "{verb} {} files ({} bytes); kept {} files ({} bytes){locked}",
            out.evicted, out.evicted_bytes, out.kept, out.kept_bytes
        );
    };
    match args.first().map(String::as_str).unwrap_or("ls") {
        "ls" => {
            // A missing directory is just an empty cache.
            let entries = prepare::cache_entries(&dir).unwrap_or_default();
            let total: u64 = entries.iter().map(|e| e.bytes).sum();
            for e in &entries {
                println!("{:>12}  {}", e.bytes, e.path.display());
            }
            println!(
                "{total:>12}  total: {} files in {}",
                entries.len(),
                dir.display()
            );
            Ok(())
        }
        "gc" => {
            let cap = max_bytes.ok_or_else(|| "cache gc needs --max-bytes N".to_string())?;
            let out = prepare::cache_gc(&dir, cap)
                .map_err(|e| format!("cannot gc {}: {e}", dir.display()))?;
            report("evicted", out);
            Ok(())
        }
        "clear" => {
            let out = prepare::cache_clear(&dir)
                .map_err(|e| format!("cannot clear {}: {e}", dir.display()))?;
            report("removed", out);
            Ok(())
        }
        other => Err(format!("unknown cache action {other:?}")),
    }
}

/// `cnc prepare` — stream an edge-list (or binary CSR) file into a
/// `CNCPREP4` image under a memory budget.
fn run_prepare(mut args: Vec<String>) -> Result<(), String> {
    let out = parse_flag(&mut args, "--out");
    let mem_budget = parse_flag(&mut args, "--mem-budget")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|e| format!("bad --mem-budget: {e}"))
        })
        .transpose()?;
    let spill_dir = parse_flag(&mut args, "--spill-dir").map(PathBuf::from);
    let policy = match parse_flag(&mut args, "--reorder").as_deref() {
        // Degree-descending by default: the default bmp-rf algorithm runs
        // on the relabeled sections, and images carrying them serve every
        // policy (the runner falls back to original ids when unused).
        None | Some("degdesc") => prepare::ReorderPolicy::DegreeDescending,
        Some("none") => prepare::ReorderPolicy::None,
        Some(other) => return Err(format!("unknown --reorder {other:?} (try degdesc|none)")),
    };
    let metrics_path = parse_flag(&mut args, "--metrics");
    let input = args
        .first()
        .cloned()
        .ok_or_else(|| "missing GRAPH argument".to_string())?;
    if let Some(stray) = args.get(1) {
        return Err(format!("unexpected argument {stray:?}"));
    }
    let out = out.unwrap_or_else(|| format!("{input}.prep"));
    // Flags override the environment; the environment fills gaps.
    let mut cfg = StreamConfig::budgeted_from_env().unwrap_or_default();
    if mem_budget.is_some() {
        cfg.mem_budget = mem_budget;
    }
    if spill_dir.is_some() {
        cfg.spill_dir = spill_dir;
    }
    let ctx = Arc::new(ObsContext::new());
    let summary = {
        let _obs = ctx.install();
        ObsContext::scoped("stream_prepare", || {
            stream::prepare_file(
                std::path::Path::new(&input),
                std::path::Path::new(&out),
                policy,
                &cfg,
            )
        })
        .map_err(|e| format!("prepare failed: {e}"))?
    };
    eprintln!(
        "prepared {out}: {} vertices, {} directed edge slots, {} file bytes",
        summary.num_vertices, summary.num_directed_edges, summary.file_bytes
    );
    eprintln!(
        "  mem budget {}: {} spill runs ({} bytes), {} input chunks, peak resident {} bytes",
        cfg.mem_budget
            .map(|b| b.to_string())
            .unwrap_or_else(|| "unbounded".into()),
        summary.spill_runs,
        summary.spill_bytes,
        summary.stream_chunks,
        summary.peak_resident_bytes
    );
    if let Some(path) = metrics_path {
        let report = RunReport::from_context(&ctx);
        let mut metrics = MetricsFile::new();
        metrics.begin_run();
        metrics.field_str("dataset", &input);
        metrics.field_str("scale", "file");
        metrics.field_str("platform", "stream-prepare");
        metrics.field_str("algorithm", "external-sort");
        metrics.end_run(&report);
        std::fs::write(&path, metrics.finish()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn parse_algo(args: &mut Vec<String>) -> Result<Algorithm, String> {
    match parse_flag(args, "--algo").as_deref() {
        None | Some("bmp-rf") => Ok(Algorithm::bmp_rf()),
        Some("bmp") => Ok(Algorithm::bmp()),
        Some("mps") => Ok(Algorithm::mps()),
        Some("m") => Ok(Algorithm::MergeBaseline),
        Some(other) => Err(format!("unknown --algo {other:?}")),
    }
}

/// Parse `--workload cnc|triangle|kclique` (plus `--k` for the clique size,
/// default 4) into a plan-level workload descriptor. The plan validates the
/// range and the platform support; this only shapes the request.
fn parse_workload(args: &mut Vec<String>) -> Result<WorkloadKind, String> {
    let k: u8 = parse_flag(args, "--k")
        .map(|s| s.parse().map_err(|e| format!("bad --k: {e}")))
        .transpose()?
        .unwrap_or(4);
    match parse_flag(args, "--workload").as_deref() {
        None | Some("cnc") => Ok(WorkloadKind::Cnc),
        Some("triangle") => Ok(WorkloadKind::Triangle),
        Some("kclique") => Ok(WorkloadKind::KClique { k }),
        Some(other) => Err(format!(
            "unknown --workload {other:?} (try cnc|triangle|kclique)"
        )),
    }
}

/// Parse `--schedule uniform|balanced` into a task decomposition policy for
/// the parallel CPU platform (`None` keeps the platform default; modeled
/// platforms ignore it).
fn parse_schedule(args: &mut Vec<String>) -> Result<Option<SchedulePolicy>, String> {
    match parse_flag(args, "--schedule").as_deref() {
        None => Ok(None),
        Some("uniform") => Ok(Some(SchedulePolicy::default())),
        Some("balanced") => {
            // Enough tasks for work stealing to smooth residual estimation
            // error, few enough to keep per-task overhead negligible.
            let workers = std::thread::available_parallelism().map_or(8, |n| n.get());
            Ok(Some(SchedulePolicy::balanced(4 * workers)))
        }
        Some(other) => Err(format!(
            "unknown --schedule {other:?} (try uniform|balanced)"
        )),
    }
}

fn platform_for(
    name: &str,
    capacity_scale: f64,
    schedule: Option<SchedulePolicy>,
) -> Result<Platform, String> {
    match name {
        "cpu" => Ok(match schedule {
            None => Platform::cpu_parallel(),
            Some(schedule) => Platform::CpuParallel(ParConfig {
                schedule,
                threads: None,
            }),
        }),
        "cpu-seq" => Ok(Platform::CpuSequential),
        "knl" => Ok(Platform::knl_flat(capacity_scale)),
        "gpu" => Ok(Platform::gpu(capacity_scale)),
        other => Err(format!("unknown --platform {other:?}")),
    }
}

/// Append one run entry (identity fields + observability report) to a
/// metrics file being built.
fn push_metrics_entry(
    file: &mut MetricsFile,
    dataset: &str,
    scale: &str,
    result: &cnc_core::CncResult,
    report: &RunReport,
) {
    file.begin_run();
    file.field_str("dataset", dataset);
    file.field_str("scale", scale);
    file.field_str("platform", &result.stats.platform);
    file.field_str("workload", &result.stats.workload);
    file.field_str("algorithm", &result.stats.requested_algorithm);
    file.field_str("effective_algorithm", &result.stats.effective_algorithm);
    file.field_str("simd_tier", &result.stats.simd_tier);
    file.field_raw(
        "reordered",
        if result.stats.reordered {
            "true"
        } else {
            "false"
        },
    );
    file.field_raw("wall_seconds", &format!("{}", result.wall_seconds));
    file.field_raw(
        "modeled_seconds",
        &result
            .modeled_seconds
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".into()),
    );
    file.end_run(report);
}

fn print_run_summary(label: &str, result: &cnc_core::CncResult) {
    eprintln!(
        "{label}: {} [{} {}] counted {} in {:.1} ms wall{}",
        result.stats.platform,
        result.stats.workload,
        result.stats.effective_algorithm,
        result.output.summary(),
        result.wall_seconds * 1e3,
        result
            .modeled_seconds
            .map(|s| format!(" ({:.3} ms modeled)", s * 1e3))
            .unwrap_or_default()
    );
}

/// `cnc run` — one observed counting run per built-in paper analogue,
/// with optional `--metrics` JSON and `--trace` span-tree output.
fn run_suite(mut args: Vec<String>) -> Result<(), String> {
    let scale = match parse_flag(&mut args, "--scale").as_deref() {
        None | Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        Some(other) => return Err(format!("unknown --scale {other:?}")),
    };
    let algo = parse_algo(&mut args)?;
    let workload = parse_workload(&mut args)?;
    let platform_name = parse_flag(&mut args, "--platform").unwrap_or_else(|| "cpu".into());
    let schedule = parse_schedule(&mut args)?;
    let metrics_path = parse_flag(&mut args, "--metrics");
    let trace = parse_switch(&mut args, "--trace");
    let datasets: Vec<Dataset> = match parse_flag(&mut args, "--dataset") {
        Some(name) => vec![*Dataset::ALL
            .iter()
            .find(|d| d.name() == name)
            .ok_or_else(|| format!("unknown --dataset {name:?} (try lj-s|or-s|wi-s|tw-s|fr-s)"))?],
        None => Dataset::ALL.to_vec(),
    };
    if let Some(stray) = args.first() {
        return Err(format!("unexpected argument {stray:?}"));
    }

    let mut metrics = MetricsFile::new();
    for d in datasets {
        // One fresh context per dataset run: counters in the report are
        // per-run totals, and the span tree covers prepare → plan → execute.
        let ctx = Arc::new(ObsContext::new());
        let result = {
            let _obs = ctx.install();
            // The reorder policy doesn't depend on the capacity scale, so a
            // provisional runner decides how to prepare; the real runner is
            // built once the graph (and its edge count) exists.
            let policy = Runner::new(platform_for(&platform_name, 1.0, schedule)?, algo)
                .workload(workload)
                .reorder_policy();
            let prepared = d.prepare(scale, policy);
            let capacity = d.capacity_scale(prepared.graph());
            let runner = Runner::new(platform_for(&platform_name, capacity, schedule)?, algo)
                .workload(workload);
            runner
                .try_run_prepared(&prepared)
                .map_err(|e| format!("{}: {e}", d.name()))?
        };
        let report = RunReport::from_context(&ctx);
        print_run_summary(d.name(), &result);
        if trace {
            println!("# {} ({})", d.name(), scale.name());
            print!("{}", report.render_trace());
        }
        push_metrics_entry(&mut metrics, d.name(), scale.name(), &result, &report);
    }
    if let Some(path) = metrics_path {
        std::fs::write(&path, metrics.finish()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Parse `--connect ADDR | --socket PATH` into the endpoint both `serve`
/// and `query` share. Exactly one must be given (`serve` also accepts
/// neither, defaulting to TCP loopback).
fn parse_endpoint(
    args: &mut Vec<String>,
    default_listen: Option<&str>,
    flag: &str,
) -> Result<Endpoint, String> {
    let addr = parse_flag(args, flag);
    let socket = parse_flag(args, "--socket").map(PathBuf::from);
    match (addr, socket) {
        (Some(_), Some(_)) => Err(format!("{flag} and --socket are mutually exclusive")),
        (Some(a), None) => Ok(Endpoint::Tcp(a)),
        (None, Some(p)) => Ok(Endpoint::Unix(p)),
        (None, None) => default_listen
            .map(|d| Endpoint::Tcp(d.to_string()))
            .ok_or_else(|| format!("query needs {flag} ADDR or --socket PATH")),
    }
}

/// `cnc serve` — keep one prepared graph resident and answer point queries
/// over the batching daemon until a client requests shutdown.
fn run_serve(mut args: Vec<String>) -> Result<(), String> {
    let algo = parse_algo(&mut args)?;
    let schedule = parse_schedule(&mut args)?;
    let endpoint = parse_endpoint(&mut args, Some("127.0.0.1:7071"), "--listen")?;
    let window_us: u64 = parse_flag(&mut args, "--batch-window-us")
        .map(|s| s.parse().map_err(|e| format!("bad --batch-window-us: {e}")))
        .transpose()?
        .unwrap_or(200);
    let queue_cap: usize = parse_flag(&mut args, "--queue-cap")
        .map(|s| s.parse().map_err(|e| format!("bad --queue-cap: {e}")))
        .transpose()?
        .unwrap_or(1024);
    let reply_limit: usize = parse_flag(&mut args, "--reply-limit")
        .map(|s| s.parse().map_err(|e| format!("bad --reply-limit: {e}")))
        .transpose()?
        .unwrap_or(1000);
    let metrics_path = parse_flag(&mut args, "--metrics");
    let dataset = parse_flag(&mut args, "--dataset");
    let scale = match parse_flag(&mut args, "--scale").as_deref() {
        None | Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        Some(other) => return Err(format!("unknown --scale {other:?}")),
    };

    // The session plans on the real CPU backends only (the plan layer
    // rejects modeled platforms), so the runner is built directly on the
    // parallel CPU platform with the chosen schedule.
    let platform = platform_for("cpu", 1.0, schedule)?;
    let runner = Runner::new(platform, algo);
    let (label, prepared) = match (dataset, args.first().cloned()) {
        (Some(_), Some(path)) => {
            return Err(format!(
                "give --dataset or a GRAPH file, not both ({path:?})"
            ))
        }
        (Some(name), None) => {
            let d = *Dataset::ALL
                .iter()
                .find(|d| d.name() == name)
                .ok_or_else(|| {
                    format!("unknown --dataset {name:?} (try lj-s|or-s|wi-s|tw-s|fr-s)")
                })?;
            let label = format!("{}:{}", d.name(), scale.name());
            (label, d.prepare(scale, runner.reorder_policy()))
        }
        (None, Some(path)) => {
            let prepared = if is_prepared_file(&path) {
                load_prepared(&path)?
            } else {
                PreparedGraph::from_csr(load_graph(&path)?, runner.reorder_policy())
            };
            (path, prepared)
        }
        (None, None) => return Err("serve needs a GRAPH file or --dataset NAME".to_string()),
    };
    if let Some(stray) = args.get(1) {
        return Err(format!("unexpected argument {stray:?}"));
    }

    let algo_label = algo.label().to_string();
    let session = cnc_core::BatchSession::new(runner, prepared).map_err(|e| e.to_string())?;
    let cfg = ServeConfig {
        batch_window: std::time::Duration::from_micros(window_us),
        queue_cap,
        reply_limit,
        graph_label: label.clone(),
    };
    let handle = cnc_serve::serve(&endpoint, session, cfg).map_err(|e| e.to_string())?;
    let where_ = match (&endpoint, handle.local_addr()) {
        (_, Some(addr)) => addr.to_string(),
        (Endpoint::Unix(p), None) => p.display().to_string(),
        (Endpoint::Tcp(a), None) => a.clone(),
    };
    eprintln!(
        "cnc serve: {label} [{algo_label}] on {where_} \
         (window {window_us}us, queue cap {queue_cap}); \
         stop with `cnc query ... shutdown`"
    );
    handle.wait();
    let report = handle.join();
    eprintln!(
        "cnc serve: drained; {} requests in {} batches ({} coalesced away, \
         max queue depth {})",
        report.counter(Counter::ServeRequests),
        report.counter(Counter::ServeBatches),
        report.counter(Counter::ServeCoalesced),
        report.counter(Counter::ServeQueueDepthMax),
    );
    if let Some(path) = metrics_path {
        // The same envelope the live `stats` reply serves.
        let mut metrics = MetricsFile::new();
        metrics.begin_run();
        metrics.field_str("graph", &label);
        metrics.field_str("platform", "serve");
        metrics.field_str("algorithm", &algo_label);
        metrics.field_str("simd_tier", cnc_intersect::SimdTier::resolve().label());
        metrics.end_run(&report);
        std::fs::write(&path, metrics.finish()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// `cnc query` — one-shot client for a running `cnc serve` daemon.
fn run_query(mut args: Vec<String>) -> Result<(), String> {
    let endpoint = parse_endpoint(&mut args, None, "--connect")?;
    let mut client = Client::connect(&endpoint).map_err(|e| e.to_string())?;
    let mut words = args.into_iter();
    let action = words.next().ok_or_else(|| {
        "query needs an action: count U V | topk K | scan THRESHOLD | stats | shutdown".to_string()
    })?;
    let mut arg = |name: &str| -> Result<u32, String> {
        words
            .next()
            .ok_or_else(|| format!("query {action} needs {name}"))?
            .parse()
            .map_err(|e| format!("bad {name}: {e}"))
    };
    let print_edges = |edges: &[cnc_core::EdgeCount]| {
        for e in edges {
            println!("{}\t{}\t{}", e.u, e.v, e.count);
        }
    };
    match action.as_str() {
        "count" => {
            let (u, v) = (arg("U")?, arg("V")?);
            match client.count(u, v).map_err(|e| e.to_string())? {
                Some(c) => println!("{c}"),
                None => return Err(format!("({u},{v}) is not an edge")),
            }
        }
        "topk" => {
            let k = arg("K")?;
            let (total, edges) = client.topk(k).map_err(|e| e.to_string())?;
            println!("total\t{total}");
            print_edges(&edges);
        }
        "scan" => {
            let threshold = arg("THRESHOLD")?;
            let (total, edges) = client.scan(threshold).map_err(|e| e.to_string())?;
            println!("total\t{total}");
            print_edges(&edges);
        }
        "stats" => println!("{}", client.stats().map_err(|e| e.to_string())?),
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            eprintln!("cnc query: server is draining and shutting down");
        }
        other => {
            return Err(format!(
                "unknown query action {other:?} (try count|topk|scan|stats|shutdown)"
            ))
        }
    }
    Ok(())
}

/// `cnc shard-worker` — the hidden per-process entry of sharded counting.
/// Spawned by the coordinator (`cnc count --shards N`), never by hand: it
/// executes one edge range of the shared prepared graph and streams the
/// section back over stdout (see `cnc-shard::protocol`).
fn run_shard_worker(mut args: Vec<String>) -> Result<(), String> {
    let prep = parse_flag(&mut args, "--prep")
        .ok_or_else(|| "shard-worker needs --prep FILE".to_string())?;
    let algo = match parse_flag(&mut args, "--algo") {
        Some(token) => cnc_shard::parse_algo_token(&token)?,
        None => Algorithm::bmp_rf(),
    };
    let reorder = match parse_flag(&mut args, "--reorder").as_deref() {
        None => None,
        Some("on") => Some(true),
        Some("off") => Some(false),
        Some(other) => return Err(format!("bad --reorder {other:?} (try on|off)")),
    };
    let mut req = |flag: &str| -> Result<usize, String> {
        parse_flag(&mut args, flag)
            .ok_or_else(|| format!("shard-worker needs {flag}"))?
            .parse()
            .map_err(|e| format!("bad {flag}: {e}"))
    };
    let shard = req("--shard")?;
    let start = req("--start")?;
    let end = req("--end")?;
    let attempt = req("--attempt").unwrap_or(0);
    if let Some(stray) = args.first() {
        return Err(format!("unexpected argument {stray:?}"));
    }
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    cnc_shard::worker_main(
        &WorkerArgs {
            prep: PathBuf::from(prep),
            algo,
            reorder,
            shard,
            start,
            end,
            attempt,
        },
        &mut out,
    )
}

/// `cnc count --shards N` — scatter-gather the count across N worker
/// processes sharing one prepared graph file; output is byte-identical to
/// the single-process run.
#[allow(clippy::too_many_arguments)]
fn run_count_sharded(
    prepared: &PreparedGraph,
    algo: Algorithm,
    workload: WorkloadKind,
    platform_name: &str,
    workers: usize,
    prep_file: Option<PathBuf>,
    label: &str,
    scale_label: &str,
    ctx: Option<&Arc<ObsContext>>,
    trace: bool,
    metrics_path: Option<&str>,
    out_path: Option<&str>,
    want_stats: bool,
) -> Result<(), String> {
    if workload != WorkloadKind::Cnc {
        return Err("--shards runs the cnc workload only".to_string());
    }
    if !matches!(platform_name, "cpu" | "cpu-seq") {
        return Err(format!(
            "--shards runs on the CPU; --platform {platform_name:?} is not shardable"
        ));
    }
    if workers == 0 {
        return Err("--shards needs at least one worker".to_string());
    }
    // Workers load the preparation from disk; reuse the input/cached image
    // when one exists, otherwise write a temporary one next to the cache.
    let (prep_path, temp) = match prep_file {
        Some(p) => (p, None),
        None => {
            let dir = prepare::default_cache_dir();
            std::fs::create_dir_all(&dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            let p = dir.join(format!("shard-adhoc-{}.prep", std::process::id()));
            let f = std::fs::File::create(&p)
                .map_err(|e| format!("cannot create {}: {e}", p.display()))?;
            prepare::write_prepared(prepared, f)
                .map_err(|e| format!("cannot write {}: {e}", p.display()))?;
            (p.clone(), Some(p))
        }
    };
    let cfg = ShardConfig {
        workers,
        algorithm: algo,
        reorder: None,
        worker_exe: std::env::current_exe().map_err(|e| format!("cannot find own exe: {e}"))?,
        prep_path,
        // Children inherit the coordinator's environment, so fault
        // injection (CNC_SHARD_FAIL) needs no explicit forwarding here.
        fail_spec: None,
    };
    let result = cnc_shard::run_sharded(prepared, &cfg);
    if let Some(p) = &temp {
        let _ = std::fs::remove_file(p);
    }
    let out = result.map_err(|e| e.to_string())?;
    let failures = if out.worker_failures > 0 {
        format!(" ({} worker failure(s) retried)", out.worker_failures)
    } else {
        String::new()
    };
    eprintln!(
        "{label}: cpu-shard [cnc {}] counted {} directed edge slots in {:.1} ms wall \
         across {} workers{failures}",
        algo.label(),
        out.counts.len(),
        out.wall_seconds * 1e3,
        out.workers,
    );
    let g = prepared.graph();
    eprintln!(
        "triangles: {}",
        CncView::new(g, &out.counts).triangle_count()
    );
    if let Some(ctx) = ctx {
        let report = RunReport::from_context(ctx);
        if trace {
            print!("{}", report.render_trace());
        }
        if let Some(path) = metrics_path {
            let mut metrics = MetricsFile::new();
            metrics.begin_run();
            metrics.field_str("dataset", label);
            metrics.field_str("scale", scale_label);
            metrics.field_str("platform", "cpu-shard");
            metrics.field_str("workload", "cnc");
            metrics.field_str("algorithm", algo.label());
            metrics.field_str("simd_tier", cnc_intersect::SimdTier::resolve().label());
            metrics.field_raw("shard_workers", &out.workers.to_string());
            metrics.field_raw("wall_seconds", &out.wall_seconds.to_string());
            let reports: Vec<&str> = out
                .worker_reports
                .iter()
                .map(String::as_str)
                .filter(|r| !r.is_empty())
                .collect();
            metrics.field_raw("worker_reports", &format!("[{}]", reports.join(",")));
            metrics.end_run(&report);
            std::fs::write(path, metrics.finish())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }
    if want_stats {
        print_stats(g);
    }
    if let Some(path) = out_path {
        write_counts_file(path, g, &out.counts)?;
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--simd` is global: it pins the instruction tier for every kernel in
    // this process before anything resolves it, and is re-exported through
    // the environment so child processes (shard workers) match.
    if let Some(name) = parse_flag(&mut args, "--simd") {
        let tier = cnc_intersect::SimdTier::force_named(&name).map_err(|e| e.to_string())?;
        std::env::set_var("CNC_SIMD", tier.label());
    }
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: cnc <count|stats|scan|truss> (GRAPH | --dataset D [--scale S]) [--algo A] [--platform P] [--workload cnc|triangle|kclique] [--k K] [--schedule uniform|balanced] [--shards N] [--out F] [--eps E] [--mu M] [--stats] [--metrics F] [--trace]\n       cnc run [--scale S] [--dataset D] [--algo A] [--platform P] [--workload cnc|triangle|kclique] [--k K] [--schedule uniform|balanced] [--metrics F] [--trace]\n       cnc prepare GRAPH [--out F.prep] [--mem-budget BYTES] [--spill-dir D] [--reorder degdesc|none] [--metrics F]\n       cnc cache [ls|gc|clear] [--dir D] [--max-bytes N]\n       cnc serve (GRAPH | --dataset D [--scale S]) [--algo A] [--listen ADDR | --socket PATH] [--batch-window-us N] [--queue-cap N] [--reply-limit N] [--schedule uniform|balanced] [--metrics F]\n       cnc query (--connect ADDR | --socket PATH) (count U V | topk K | scan T | stats | shutdown)\n       global: [--simd scalar|portable|avx2|avx512] (or CNC_SIMD=) pins the vector instruction tier"
        );
        return Ok(());
    }
    let command = args.remove(0);
    if command == "cache" {
        return run_cache(args);
    }
    if command == "run" {
        return run_suite(args);
    }
    if command == "prepare" {
        return run_prepare(args);
    }
    if command == "serve" {
        return run_serve(args);
    }
    if command == "query" {
        return run_query(args);
    }
    if command == "shard-worker" {
        return run_shard_worker(args);
    }
    let algo = parse_algo(&mut args)?;
    let workload = parse_workload(&mut args)?;
    let out_path = parse_flag(&mut args, "--out");
    let eps: f64 = parse_flag(&mut args, "--eps")
        .map(|s| s.parse().map_err(|e| format!("bad --eps: {e}")))
        .transpose()?
        .unwrap_or(0.6);
    let mu: usize = parse_flag(&mut args, "--mu")
        .map(|s| s.parse().map_err(|e| format!("bad --mu: {e}")))
        .transpose()?
        .unwrap_or(3);
    let want_stats = parse_switch(&mut args, "--stats");
    let metrics_path = parse_flag(&mut args, "--metrics");
    let trace = parse_switch(&mut args, "--trace");
    let platform_arg = parse_flag(&mut args, "--platform");
    let schedule = parse_schedule(&mut args)?;
    let shards: Option<usize> = parse_flag(&mut args, "--shards")
        .map(|s| s.parse().map_err(|e| format!("bad --shards: {e}")))
        .transpose()?;
    if shards.is_some() && command != "count" {
        return Err("--shards applies to cnc count only".to_string());
    }
    let dataset =
        match parse_flag(&mut args, "--dataset") {
            Some(name) => Some(*Dataset::ALL.iter().find(|d| d.name() == name).ok_or_else(
                || format!("unknown --dataset {name:?} (try lj-s|or-s|wi-s|tw-s|fr-s)"),
            )?),
            None => None,
        };
    let ds_scale = match parse_flag(&mut args, "--scale").as_deref() {
        None | Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        Some(other) => return Err(format!("unknown --scale {other:?}")),
    };
    let graph_path = match (&dataset, args.first()) {
        (Some(_), Some(path)) => {
            return Err(format!(
                "give --dataset or a GRAPH file, not both ({path:?})"
            ))
        }
        (None, None) => return Err("missing GRAPH argument (or --dataset NAME)".to_string()),
        (None, Some(path)) => Some(path.clone()),
        (Some(_), None) => None,
    };
    let label = match (&graph_path, &dataset) {
        (Some(path), _) => path.clone(),
        (None, Some(d)) => format!("{}:{}", d.name(), ds_scale.name()),
        (None, None) => unreachable!("resolved above"),
    };
    let scale_label = if graph_path.is_some() {
        "file".to_string()
    } else {
        ds_scale.name().to_string()
    };
    // Observability is opt-in: install a context before preparation so the
    // report covers the prepare spans too. Without the flags nothing is
    // recorded and execution takes the unobserved code paths.
    let ctx = (metrics_path.is_some() || trace).then(|| Arc::new(ObsContext::new()));
    let _obs = ctx.as_ref().map(|c| c.install());
    // A CNCPREP4 image (from `cnc prepare` or the run cache) skips
    // preparation entirely — zero-copy mapped where the platform allows.
    // Text and binary-CSR inputs are prepared in-process as before;
    // built-in datasets prepare through the shared disk cache.
    // `prep_file` remembers an on-disk image sharded workers can share.
    let mut prep_file: Option<PathBuf> = None;
    let preloaded = match (&graph_path, &dataset) {
        (Some(path), _) if is_prepared_file(path) => {
            prep_file = Some(PathBuf::from(path));
            Some(load_prepared(path)?)
        }
        (Some(_), _) => None,
        (None, Some(d)) => {
            // The reorder policy depends on the algorithm only, so a
            // provisional sequential runner decides how to prepare.
            let policy = Runner::new(Platform::CpuSequential, algo)
                .workload(workload)
                .reorder_policy();
            let pg = d.prepare(ds_scale, policy);
            let cached = prepare::cache_path(&prepare::default_cache_dir(), *d, ds_scale, policy);
            if cached.is_file() {
                prep_file = Some(cached);
            }
            Some(pg)
        }
        (None, None) => unreachable!("resolved above"),
    };
    let raw = match (&preloaded, &graph_path) {
        (Some(_), _) => None,
        (None, Some(path)) => Some(load_graph(path)?),
        (None, None) => unreachable!("one of the loaders ran"),
    };
    let (csr_bytes, und_edges) = {
        let g = preloaded
            .as_ref()
            .map(|p| p.graph())
            .or(raw.as_ref())
            .expect("either prepared or raw graph is loaded");
        (g.csr_bytes(), g.num_undirected_edges())
    };
    let platform_name = platform_arg.unwrap_or_else(|| {
        let name = default_platform_name(csr_bytes as u64);
        if name == "gpu" {
            eprintln!(
                "cnc: {csr_bytes}-byte prepared CSR crosses ${GPU_UM_THRESHOLD_ENV}; \
                 defaulting to the unified-memory GPU platform (multipass as needed; \
                 override with --platform cpu)"
            );
        }
        name.to_string()
    });
    // Modeled platforms need a capacity scale; for ad-hoc files use the
    // graph's ratio to the paper's twitter dataset as a sensible default.
    let scale = (und_edges as f64 / 684_500_375.0).min(1.0);
    let platform = platform_for(&platform_name, scale, schedule)?;

    // Derived analytics need per-edge counts; global workload tallies
    // cannot feed them, so reject the combination up front.
    if workload != WorkloadKind::Cnc && matches!(command.as_str(), "scan" | "truss") {
        return Err(format!(
            "cnc {command} needs per-edge counts; it runs the cnc workload only"
        ));
    }
    // Prepare once (CSR + reorder tables + statistics); every subcommand
    // below shares the result instead of re-deriving it per run.
    let runner = Runner::new(platform, algo).workload(workload);
    let prepared = match (preloaded, raw) {
        (Some(p), _) => p,
        (None, Some(g)) => PreparedGraph::from_csr(g, runner.reorder_policy()),
        (None, None) => unreachable!("one of the loaders ran"),
    };
    let g = prepared.graph();

    match command.as_str() {
        "stats" => {
            print_stats(g);
            Ok(())
        }
        "count" => {
            if let Some(n) = shards {
                return run_count_sharded(
                    &prepared,
                    algo,
                    workload,
                    &platform_name,
                    n,
                    prep_file,
                    &label,
                    &scale_label,
                    ctx.as_ref(),
                    trace,
                    metrics_path.as_deref(),
                    out_path.as_deref(),
                    want_stats,
                );
            }
            let result = runner
                .try_run_prepared(&prepared)
                .map_err(|e| e.to_string())?;
            print_run_summary(&label, &result);
            // Derived analytics exist for per-edge counts only; global
            // workloads already printed their tally in the summary.
            if result.edge_counts().is_some() {
                eprintln!("triangles: {}", result.view(g).triangle_count());
            }
            if let Some(ctx) = &ctx {
                let report = RunReport::from_context(ctx);
                if trace {
                    print!("{}", report.render_trace());
                }
                if let Some(path) = &metrics_path {
                    let mut metrics = MetricsFile::new();
                    push_metrics_entry(&mut metrics, &label, &scale_label, &result, &report);
                    std::fs::write(path, metrics.finish())
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
            }
            if want_stats {
                print_stats(g);
            }
            if let Some(path) = out_path {
                let counts = result.edge_counts().ok_or_else(|| {
                    "--out writes per-edge counts; use --workload cnc".to_string()
                })?;
                write_counts_file(&path, g, counts)?;
            }
            Ok(())
        }
        "scan" => {
            let result = runner
                .try_run_prepared(&prepared)
                .map_err(|e| e.to_string())?;
            let view = result.view(g);
            let r = try_scan(&view, eps, mu).map_err(|e| e.to_string())?;
            println!(
                "SCAN(eps={eps}, mu={mu}): {} clusters; cores {}, borders {}, hubs {}, outliers {}",
                r.num_clusters,
                r.count_role(cnc_core::Role::Core),
                r.count_role(cnc_core::Role::Border),
                r.count_role(cnc_core::Role::Hub),
                r.count_role(cnc_core::Role::Outlier),
            );
            let mut sizes: Vec<usize> = (0..r.num_clusters as i32)
                .map(|c| r.members(c).len())
                .collect();
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            println!("largest clusters: {:?}", &sizes[..sizes.len().min(10)]);
            Ok(())
        }
        "truss" => {
            let result = runner
                .try_run_prepared(&prepared)
                .map_err(|e| e.to_string())?;
            let r = truss_decomposition(g, result.counts()).map_err(|e| e.to_string())?;
            println!("max trussness: {}", r.max_k);
            for k in 3..=r.max_k {
                let edges = r.truss_edge_count(g, k);
                if edges > 0 {
                    println!("  {k}-truss: {edges} edges");
                }
            }
            // Also report the densest layer's clustering quality.
            let view = CncView::new(g, result.counts());
            println!(
                "global clustering coefficient: {:.4}",
                view.global_clustering_coefficient()
            );
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cnc: {e}");
            ExitCode::FAILURE
        }
    }
}
