//! Quickstart: build a graph, count common neighbors on every edge, and
//! read off some analytics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cnc_core::{Algorithm, Platform, Runner};
use cnc_graph::{generators, CsrGraph};

fn main() {
    // A power-law graph like a small social network.
    let edges = generators::chung_lu(5_000, 12.0, 2.2, 42);
    let graph = CsrGraph::from_edge_list(&edges);
    println!(
        "graph: {} vertices, {} undirected edges",
        graph.num_vertices(),
        graph.num_undirected_edges()
    );

    // Count |N(u) ∩ N(v)| for every edge with the paper's BMP algorithm
    // (range-filtered bitmap index) on the real CPU, in parallel.
    let result = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run(&graph);
    println!("counted in {:.1} ms (host wall)", result.wall_seconds * 1e3);

    let view = result.view(&graph);
    println!("triangles: {}", view.triangle_count());

    // The five strongest ties by Jaccard similarity.
    let mut edges_by_jaccard: Vec<(usize, f64)> = (0..graph.num_directed_edges())
        .map(|eid| (eid, view.jaccard(eid)))
        .collect();
    edges_by_jaccard.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("strongest ties:");
    for (eid, j) in edges_by_jaccard.iter().take(5) {
        let (u, v) = view.endpoints(*eid);
        println!(
            "  ({u}, {v}): {} common neighbors, jaccard {j:.3}",
            view.counts()[*eid]
        );
    }

    // The same counts via the hybrid merge algorithm — identical results.
    let mps = Runner::new(Platform::cpu_parallel(), Algorithm::mps()).run(&graph);
    assert_eq!(mps.counts(), result.counts());
    println!(
        "MPS and BMP agree on all {} edge slots ✓",
        mps.counts().len()
    );
}
