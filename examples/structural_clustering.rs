//! SCAN structural graph clustering on top of the all-edge counts —
//! the application the paper's citations ([8, 9, 21, 25–27]) compute these
//! counts for — plus the k-truss decomposition of the same graph.
//!
//! SCAN (Xu et al., KDD'07) clusters vertices by *structural similarity*
//! `σ(u,v) = (|N(u) ∩ N(v)| + 2) / sqrt((d_u+1)(d_v+1))`; the k-truss
//! peels edges by triangle support. Both are direct functions of the
//! counts this library produces — see `cnc_core::{scan, truss}`.
//!
//! ```text
//! cargo run --release --example structural_clustering
//! ```

use cnc_core::{scan, truss_decomposition, Algorithm, Platform, Role, Runner};
use cnc_graph::{generators, CsrGraph, EdgeList};

fn main() {
    // Ground-truth communities: five 40-cliques bridged by single edges,
    // plus background noise edges.
    let mut el: EdgeList = generators::clique_chain(5, 40);
    let noise = generators::gnm(200, 150, 3);
    for (u, v) in noise.iter() {
        el.push(u, v);
    }
    el.normalize();
    let graph = CsrGraph::from_edge_list(&el);
    println!(
        "graph: {} vertices, {} edges (5 planted 40-cliques + noise)",
        graph.num_vertices(),
        graph.num_undirected_edges()
    );

    // Step 1 — the expensive part, the paper's subject: all-edge counts.
    let result = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run(&graph);
    println!(
        "all-edge common neighbor counting: {:.1} ms",
        result.wall_seconds * 1e3
    );
    let view = result.view(&graph);

    // Step 2 — SCAN with the usual parameters.
    let (eps, mu) = (0.6, 3);
    let clusters = scan(&view, eps, mu);
    println!(
        "SCAN(ε={eps}, μ={mu}): {} clusters — {} cores, {} borders, {} hubs, {} outliers",
        clusters.num_clusters,
        clusters.count_role(Role::Core),
        clusters.count_role(Role::Border),
        clusters.count_role(Role::Hub),
        clusters.count_role(Role::Outlier),
    );

    // Check the planted structure was recovered: each clique maps to one
    // dominant cluster.
    for clique in 0..5 {
        let members = (clique * 40)..(clique * 40 + 40);
        let mut histogram = std::collections::HashMap::new();
        for m in members {
            *histogram.entry(clusters.cluster[m]).or_insert(0usize) += 1;
        }
        let (&dominant, &size) = histogram.iter().max_by_key(|(_, &c)| c).unwrap();
        println!("  planted clique {clique}: {size}/40 members in cluster {dominant}");
        assert!(size >= 38, "planted structure must be recovered");
    }
    println!("all planted communities recovered ✓");

    // Step 3 — the k-truss decomposition from the *same* counts: the
    // planted cliques are 40-trusses, the noise is not.
    let truss =
        truss_decomposition(&graph, result.counts()).expect("counts come straight from the runner");
    println!("\nk-truss decomposition: max k = {}", truss.max_k);
    for k in [3, 10, 20, truss.max_k] {
        println!("  {k}-truss: {} edges", truss.truss_edge_count(&graph, k));
    }
    assert!(truss.max_k >= 40, "each planted K40 is a 40-truss");
    // The 40-truss is exactly the clique edges (5 * C(40,2)), minus any
    // clique edge the noise happened to strengthen beyond.
    let core_edges = truss.truss_edge_count(&graph, 40);
    println!(
        "the {}-truss holds {core_edges} edges (5 * C(40,2) = {})",
        truss.max_k,
        5 * 40 * 39 / 2
    );
}
