//! Online analytics under a live edge stream — the scenario the paper's
//! introduction motivates ("analyze the data on the fly … while the user is
//! shopping"), taken one step further: instead of re-running the all-edge
//! counting after every purchase, maintain the counts *incrementally* in
//! `O(d_u + d_v)` per update and keep recommendations fresh between the
//! periodic batch recounts.
//!
//! ```text
//! cargo run --release --example online_updates
//! ```

use std::time::Instant;

use cnc_core::{Algorithm, IncrementalCnc, Platform, Runner};
use cnc_graph::datasets::{Dataset, Scale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Bootstrap: a batch count of yesterday's co-purchasing graph, using
    // the fastest batch backend (the paper's subject).
    let graph = Dataset::LjS.build(Scale::Tiny);
    let batch = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run(&graph);
    println!(
        "batch bootstrap: {} edges counted in {:.1} ms (triangles: {})",
        graph.num_undirected_edges(),
        batch.wall_seconds * 1e3,
        batch.view(&graph).triangle_count()
    );

    // Hand the result to the incremental maintainer.
    let mut live = IncrementalCnc::from_graph(&graph, batch.counts())
        .expect("batch counts come straight from the runner");

    // A day of traffic: 20k interleaved purchases (edge inserts) and
    // returns (edge removals).
    let mut rng = StdRng::seed_from_u64(2024);
    let n = live.num_vertices() as u32;
    let t0 = Instant::now();
    let (mut inserted, mut removed) = (0usize, 0usize);
    let mut recent: Vec<(u32, u32)> = Vec::new();
    for _ in 0..20_000 {
        if recent.is_empty() || rng.gen::<f64>() < 0.7 {
            let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if u != v && live.insert_edge(u, v).expect("ids are in range") {
                inserted += 1;
                recent.push((u.min(v), u.max(v)));
            }
        } else {
            let idx = rng.gen_range(0..recent.len());
            let (u, v) = recent.swap_remove(idx);
            if live.remove_edge(u, v) {
                removed += 1;
            }
        }
    }
    let stream_s = t0.elapsed().as_secs_f64();
    println!(
        "streamed {inserted} inserts + {removed} removes in {:.1} ms ({:.2} µs/update)",
        stream_s * 1e3,
        stream_s * 1e6 / (inserted + removed) as f64
    );
    println!("live triangle count: {}", live.triangle_count());

    // Verify: the maintained counts equal a from-scratch batch recount of
    // the mutated graph.
    let (snapshot, maintained) = live.snapshot();
    let t1 = Instant::now();
    let recount = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run(&snapshot);
    let recount_s = t1.elapsed().as_secs_f64();
    assert_eq!(maintained, recount.counts(), "incremental must stay exact");
    println!(
        "verified against a fresh batch recount ({:.1} ms) — identical ✓",
        recount_s * 1e3
    );
    println!(
        "maintaining beats recounting when updates arrive faster than ~{:.0} edits/batch",
        recount_s / (stream_s / (inserted + removed) as f64)
    );
}
