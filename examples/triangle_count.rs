//! Exact triangle counting derived from the all-edge counts
//! (Section 2.2.2: `Σ_e cnt[e] / 6`), cross-checked across all algorithms
//! and platforms.
//!
//! ```text
//! cargo run --release --example triangle_count
//! ```

use cnc_core::{Algorithm, Platform, Runner};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::{generators, CsrGraph};

fn main() {
    // Known ground truth first: clique_chain(k, s) has k * C(s,3) triangles.
    let g = CsrGraph::from_edge_list(&generators::clique_chain(6, 10));
    let r = Runner::new(Platform::cpu_parallel(), Algorithm::mps()).run(&g);
    let expected = 6 * (10 * 9 * 8) / 6;
    assert_eq!(r.view(&g).triangle_count(), expected as u64);
    println!("clique-chain ground truth: {expected} triangles ✓");

    // Triangle census of the five dataset analogues, cross-checked between
    // the merge-based and bitmap-based algorithm families.
    println!(
        "\n{:<8} {:>10} {:>12} {:>14}",
        "dataset", "|V|", "|E|", "triangles"
    );
    for d in Dataset::ALL {
        let g = d.build(Scale::Tiny);
        let mps = Runner::new(Platform::cpu_parallel(), Algorithm::mps()).run(&g);
        let bmp = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run(&g);
        let t = mps.view(&g).triangle_count();
        assert_eq!(
            t,
            bmp.view(&g).triangle_count(),
            "{} disagreement",
            d.name()
        );
        println!(
            "{:<8} {:>10} {:>12} {:>14}",
            d.name(),
            g.num_vertices(),
            g.num_undirected_edges(),
            t
        );
    }

    // The simulated processors agree too.
    let g = Dataset::LjS.build(Scale::Tiny);
    let scale = Dataset::LjS.capacity_scale(&g);
    let knl = Runner::new(Platform::knl_flat(scale), Algorithm::mps()).run(&g);
    let gpu = Runner::new(Platform::gpu(scale), Algorithm::bmp_rf()).run(&g);
    assert_eq!(knl.view(&g).triangle_count(), gpu.view(&g).triangle_count());
    println!(
        "\nKNL and GPU backends agree: {} triangles on lj-s (modeled {:.2} ms / {:.2} ms)",
        knl.view(&g).triangle_count(),
        knl.modeled_seconds.unwrap() * 1e3,
        gpu.modeled_seconds.unwrap() * 1e3,
    );
}
