//! A Figure-10-style comparison: run both optimized algorithms on all three
//! processors (real CPU + simulated KNL and GPU) over one dataset analogue
//! and print who wins.
//!
//! ```text
//! cargo run --release --example platform_comparison [tw|lj|or|wi|fr]
//! ```

use cnc_core::{Algorithm, Platform, RunDetail, Runner};
use cnc_graph::datasets::{Dataset, Scale};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "tw".into());
    let dataset = match which.as_str() {
        "lj" => Dataset::LjS,
        "or" => Dataset::OrS,
        "wi" => Dataset::WiS,
        "tw" => Dataset::TwS,
        "fr" => Dataset::FrS,
        other => {
            eprintln!("unknown dataset {other:?}; use lj|or|wi|tw|fr");
            std::process::exit(1);
        }
    };
    let graph = dataset.build(Scale::Tiny);
    let scale = dataset.capacity_scale(&graph);
    println!(
        "{} analogue: {} vertices, {} edges (capacity scale {:.1e} vs the paper's {})",
        dataset.name(),
        graph.num_vertices(),
        graph.num_undirected_edges(),
        scale,
        dataset.paper_name()
    );

    let configs: Vec<(&str, Platform, Algorithm)> = vec![
        (
            "CPU-MPS (modeled 56t)",
            Platform::CpuModel {
                threads: 56,
                capacity_scale: scale,
            },
            Algorithm::mps(),
        ),
        (
            "CPU-BMP (modeled 56t)",
            Platform::CpuModel {
                threads: 56,
                capacity_scale: scale,
            },
            Algorithm::bmp_rf(),
        ),
        (
            "KNL-MPS (256t, flat)",
            Platform::knl_flat(scale),
            Algorithm::mps(),
        ),
        (
            "KNL-BMP (256t, flat)",
            Platform::knl_flat(scale),
            Algorithm::bmp_rf(),
        ),
        ("GPU-MPS", Platform::gpu(scale), Algorithm::mps()),
        ("GPU-BMP", Platform::gpu(scale), Algorithm::bmp_rf()),
    ];

    let mut results = Vec::new();
    let mut reference: Option<Vec<u32>> = None;
    println!(
        "\n{:<24} {:>14} {:>12}",
        "configuration", "modeled time", "notes"
    );
    for (label, platform, algorithm) in configs {
        let r = Runner::new(platform, algorithm).run(&graph);
        // Every configuration must agree bit-for-bit.
        match &reference {
            None => reference = Some(r.counts().to_vec()),
            Some(want) => assert_eq!(r.counts(), want.as_slice(), "{label} disagrees"),
        }
        let modeled = r.modeled_seconds.unwrap();
        let note = match &r.detail {
            RunDetail::Gpu(g) => format!("{} pass(es), {} UM faults", g.passes, g.faults),
            RunDetail::Modeled(m) => format!("cache hit {:.0}%", m.cache_hit_ratio * 100.0),
            RunDetail::Measured => String::new(),
        };
        println!("{label:<24} {:>11.3} ms {:>18}", modeled * 1e3, note);
        results.push((label, modeled));
    }

    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!(
        "\nbest: {} — worst: {} ({:.1}x apart)",
        results.first().unwrap().0,
        results.last().unwrap().0,
        results.last().unwrap().1 / results.first().unwrap().1
    );
    println!("(paper finding: best is KNL-MPS or GPU-BMP; worst is GPU-MPS)");

    // And one real measured run on this host for comparison.
    let real = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run(&graph);
    println!(
        "\nthis host (real, {} rayon threads): {:.1} ms wall",
        rayon::current_num_threads(),
        real.wall_seconds * 1e3
    );
}
