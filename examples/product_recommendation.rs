//! The introduction's motivating scenario: an online platform maintains a
//! co-purchasing graph and recommends products *while the user shops* —
//! which requires the all-edge common neighbor counts to be fresh.
//!
//! Products are vertices; an edge means "bought together at least once".
//! The common neighbor count of an edge (a, b) is the number of other
//! products co-bought with *both* — a strong "customers also bought" signal.
//!
//! ```text
//! cargo run --release --example product_recommendation
//! ```

use cnc_core::{Algorithm, Platform, Runner};
use cnc_graph::{CsrGraph, EdgeList};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesize a co-purchasing graph: product categories are near-cliques
/// (things bought together), plus random cross-category purchases.
fn co_purchasing_graph(
    categories: usize,
    per_category: usize,
    seed: u64,
) -> (CsrGraph, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = categories * per_category;
    let mut el = EdgeList::new(n);
    // Within a category, frequently co-bought pairs.
    for c in 0..categories {
        let base = (c * per_category) as u32;
        for i in 0..per_category as u32 {
            for j in (i + 1)..per_category as u32 {
                if rng.gen::<f64>() < 0.45 {
                    el.push(base + i, base + j);
                }
            }
        }
    }
    // Cross-category impulse buys.
    for _ in 0..n * 2 {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            el.push(a.min(b), a.max(b));
        }
    }
    el.normalize();
    let names: Vec<String> = (0..n)
        .map(|p| {
            format!(
                "product-{}{:03}",
                (b'A' + (p / per_category) as u8) as char,
                p % per_category
            )
        })
        .collect();
    (CsrGraph::from_edge_list(&el), names)
}

fn main() {
    let (graph, names) = co_purchasing_graph(40, 50, 7);
    println!(
        "co-purchasing graph: {} products, {} co-purchase pairs",
        graph.num_vertices(),
        graph.num_undirected_edges()
    );

    // Online analytics: refresh all-edge counts with the fastest real
    // backend (parallel BMP with range filtering, per the paper's CPU
    // findings).
    let result = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf()).run(&graph);
    println!(
        "refreshed {} co-recommendation scores in {:.1} ms",
        result.counts().len(),
        result.wall_seconds * 1e3
    );
    let view = result.view(&graph);

    // A shopper just put product-A017 in their basket: rank its co-purchase
    // partners by shared-context strength.
    let anchor = 17u32;
    println!("\nbecause you bought {}:", names[anchor as usize]);
    for (partner, shared) in view.ranked_neighbors(anchor).into_iter().take(8) {
        println!(
            "  {:>14}  ({} products co-bought with both, cosine {:.3})",
            names[partner as usize],
            shared,
            view.cosine(graph.edge_offset(anchor, partner).unwrap()),
        );
    }

    // Most of the top recommendations should come from the same category
    // (the near-clique) — sanity-check the signal quality.
    let top: Vec<u32> = view
        .ranked_neighbors(anchor)
        .into_iter()
        .take(5)
        .map(|(p, _)| p)
        .collect();
    let same_cat = top.iter().filter(|&&p| p / 50 == anchor / 50).count();
    println!(
        "\n{}/{} of the top recommendations share {}'s category",
        same_cat,
        top.len(),
        names[anchor as usize]
    );
    // Also an example of why generators::clique_chain exists in tests.
    let random_edge_strength: f64 = view.jaccard(graph.offset_range(anchor).start);
    println!("(weakest-tie jaccard for comparison: {random_edge_strength:.3})");
}
